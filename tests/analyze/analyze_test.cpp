// Unit tests for the mris_analyze frontend (tokens, scopes, symbols,
// suppressions) and its three passes (layering, taint, thread-safety),
// plus end-to-end assertions over the committed fixture trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/lint_core.hpp"
#include "tools/mris_analyze/frontend.hpp"
#include "tools/mris_analyze/layering.hpp"
#include "tools/mris_analyze/taint.hpp"
#include "tools/mris_analyze/threadsafety.hpp"

namespace mris::analyze {
namespace {

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int line_of(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

// --- tokenizer ------------------------------------------------------------

TEST(Tokenize, IdentifiersNumbersAndMultiCharOperators) {
  const auto toks = tokenize("a2 += b->c :: 10 == x;");
  std::vector<std::string> texts;
  for (const auto& t : toks) texts.push_back(t.text);
  const std::vector<std::string> want = {"a2", "+=", "b", "->", "c",
                                         "::", "10", "==", "x",  ";"};
  EXPECT_EQ(texts, want);
  EXPECT_TRUE(toks[0].is_ident);
  EXPECT_FALSE(toks[6].is_ident);  // "10" is a number, not an identifier
}

TEST(Tokenize, TracksLineNumbersAndSkipsPreprocessor) {
  const auto toks = tokenize("int a;\n#define M(x) \\\n  (x)\nint b;\n");
  ASSERT_EQ(toks.size(), 6u);  // int a ; int b ; — the directive vanishes
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].text, "int");
  EXPECT_EQ(toks[3].line, 4);  // continuation consumed both #define lines
}

// --- scopes ---------------------------------------------------------------

TEST(Scopes, ClassifiesNamespaceClassFunctionBlock) {
  const std::string text =
      "namespace ns {\n"
      "class Widget {\n"
      " public:\n"
      "  int poke() {\n"
      "    if (x) { y(); }\n"
      "    return 0;\n"
      "  }\n"
      "};\n"
      "}\n";
  const SourceFile f = make_source("t.cpp", text);
  std::vector<ScopeKind> kinds;
  for (const auto& s : f.scopes) kinds.push_back(s.kind);
  const std::vector<ScopeKind> want = {ScopeKind::kNamespace, ScopeKind::kClass,
                                       ScopeKind::kFunction, ScopeKind::kBlock};
  EXPECT_EQ(kinds, want);
  EXPECT_EQ(f.scopes[0].name, "ns");
  EXPECT_EQ(f.scopes[1].name, "Widget");
  EXPECT_EQ(f.scopes[2].name, "poke");
  EXPECT_EQ(enclosing_class_name(f.scopes, 2), "Widget");

  // A token inside the if-block resolves to the function scope.
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].text == "y") {
      EXPECT_EQ(enclosing_function(f.scopes, i), 2);
    }
  }
}

TEST(Scopes, QualifiedOutOfLineDefinitionKeepsQualifier) {
  const SourceFile f =
      make_source("t.cpp", "int Widget::poke(int v) { return v; }\n");
  ASSERT_EQ(f.scopes.size(), 1u);
  EXPECT_EQ(f.scopes[0].kind, ScopeKind::kFunction);
  EXPECT_EQ(f.scopes[0].name, "Widget::poke");
}

// --- symbol table ---------------------------------------------------------

TEST(Symbols, RecordsContainersThreadLocalsAndGuards) {
  const std::string text =
      "#include <map>\n"
      "struct S {\n"
      "  std::unordered_map<int, int> ages_;\n"
      "  std::map<Task*, int> by_ptr_;\n"
      "  int hits_ MRIS_GUARDED_BY(mu_) = 0;\n"
      "  Journal* journal_ MRIS_PT_GUARDED_BY(mu_) = nullptr;\n"
      "};\n"
      "thread_local int scratch = 0;\n";
  const SourceFile f = make_source("t.cpp", text);

  ASSERT_EQ(f.symbols.containers.size(), 2u);
  EXPECT_EQ(f.symbols.containers[0].name, "ages_");
  EXPECT_EQ(f.symbols.containers[0].order, ContainerOrder::kUnordered);
  EXPECT_EQ(f.symbols.containers[1].name, "by_ptr_");
  EXPECT_EQ(f.symbols.containers[1].order, ContainerOrder::kPointerKeyed);

  ASSERT_EQ(f.symbols.thread_locals.size(), 1u);
  EXPECT_EQ(f.symbols.thread_locals[0], "scratch");

  ASSERT_EQ(f.symbols.guarded.size(), 2u);
  EXPECT_EQ(f.symbols.guarded[0].cls, "S");
  EXPECT_EQ(f.symbols.guarded[0].field, "hits_");
  EXPECT_EQ(f.symbols.guarded[0].mutex, "mu_");
  EXPECT_FALSE(f.symbols.guarded[0].pointer_guard);
  EXPECT_EQ(f.symbols.guarded[1].field, "journal_");
  EXPECT_TRUE(f.symbols.guarded[1].pointer_guard);
}

// --- suppressions ---------------------------------------------------------

TEST(Suppressions, LineAndPreviousLineAndWildcard) {
  EXPECT_TRUE(line_allows("x();  // mris-analyze: allow(ts-global)",
                          "ts-global"));
  EXPECT_TRUE(line_allows("// mris-analyze: allow(all)", "taint-flow"));
  EXPECT_FALSE(line_allows("// mris-analyze: allow(ts-global)", "ts-guard"));
  // mris-lint's tag must NOT suppress analyzer findings.
  EXPECT_FALSE(line_allows("// mris-lint: allow(ts-global)", "ts-global"));
}

TEST(Suppressions, ReporterHonorsCommentOnOrAboveLine) {
  const std::string text =
      "int a;\n"
      "// mris-analyze: allow(demo)\n"
      "int b;\n";
  const SourceFile f = make_source("t.cpp", text);
  Options options;
  std::vector<Finding> sink;
  Reporter r(f, options, sink);
  r.report(1, "demo", "on unsuppressed line");
  r.report(3, "demo", "line above allows");
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].line, 1);
  EXPECT_TRUE(r.suppressed(3, "demo"));

  // --no-suppress reports both.
  options.honor_suppressions = false;
  std::vector<Finding> raw;
  Reporter r2(f, options, raw);
  r2.report(3, "demo", "reported raw");
  EXPECT_EQ(raw.size(), 1u);
}

TEST(Suppressions, RuleFilterDropsOtherRules) {
  const SourceFile f = make_source("t.cpp", "int a;\n");
  Options options;
  options.rule_filter = {"keep-me"};
  std::vector<Finding> sink;
  Reporter r(f, options, sink);
  r.report(1, "keep-me", "kept");
  r.report(1, "drop-me", "dropped");
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].rule, "keep-me");
}

// --- layering -------------------------------------------------------------

SourceFile include_file(const std::string& rel, const std::string& body) {
  return make_source(rel, body);
}

TEST(Layering, UpwardIncludeIsFlaggedDownwardIsNot) {
  std::vector<SourceFile> files = {
      include_file("util/a.hpp", "#include \"sim/engine.hpp\"\n"),
      include_file("sim/engine.hpp", "#include \"util/rng.hpp\"\n"),
      include_file("util/rng.hpp", "int x;\n"),
  };
  const std::vector<std::string> rels = {"util/a.hpp", "sim/engine.hpp",
                                         "util/rng.hpp"};
  const LayeringResult res = analyze_layering(files, rels, Options{});
  ASSERT_TRUE(has_rule(res.findings, "layer-upward"));
  EXPECT_EQ(line_of(res.findings, "layer-upward"), 1);
  // Only the util -> sim edge is a violation; sim -> util is the order.
  EXPECT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].file, "util/a.hpp");
  EXPECT_EQ(res.edge_count, 2);
  EXPECT_EQ(res.modules.at("util").rank, 0);
  EXPECT_GT(res.modules.at("sim").rank, res.modules.at("util").rank);
}

TEST(Layering, FileCycleIsFlagged) {
  std::vector<SourceFile> files = {
      include_file("core/a.hpp", "#include \"core/b.hpp\"\n"),
      include_file("core/b.hpp", "#include \"core/a.hpp\"\n"),
  };
  const std::vector<std::string> rels = {"core/a.hpp", "core/b.hpp"};
  const LayeringResult res = analyze_layering(files, rels, Options{});
  EXPECT_TRUE(has_rule(res.findings, "layer-cycle"));
}

TEST(Layering, SuppressedViolationStaysInBaseline) {
  std::vector<SourceFile> files = {
      include_file("util/a.hpp",
                   "// mris-analyze: allow(layer-upward)\n"
                   "#include \"sim/engine.hpp\"\n"),
      include_file("sim/engine.hpp", "int x;\n"),
  };
  const std::vector<std::string> rels = {"util/a.hpp", "sim/engine.hpp"};
  const LayeringResult res = analyze_layering(files, rels, Options{});
  EXPECT_FALSE(has_rule(res.findings, "layer-upward"));
  ASSERT_EQ(res.violations.size(), 1u);
  EXPECT_TRUE(res.violations[0].suppressed);
  // The suppressed edge still shows up in the JSON baseline.
  EXPECT_NE(layers_json(res).find("\"suppressed\": true"), std::string::npos);
}

TEST(Layering, JsonIsDeterministic) {
  std::vector<SourceFile> files = {
      include_file("sim/a.hpp", "#include \"util/b.hpp\"\n"),
      include_file("util/b.hpp", "int x;\n"),
  };
  const std::vector<std::string> rels = {"sim/a.hpp", "util/b.hpp"};
  const LayeringResult r1 = analyze_layering(files, rels, Options{});
  const LayeringResult r2 = analyze_layering(files, rels, Options{});
  EXPECT_EQ(layers_json(r1), layers_json(r2));
  EXPECT_NE(layers_json(r1).find("\"files\": 2"), std::string::npos);
  // The markdown rendering carries the layer diagram for docs.
  EXPECT_NE(layers_markdown(r1).find("util"), std::string::npos);
}

// --- taint ----------------------------------------------------------------

std::vector<Finding> taint_of(const std::string& text) {
  const SourceFile f = make_source("t.cpp", text);
  return analyze_taint(f, Options{});
}

TEST(Taint, RangeForOverUnorderedIsASource) {
  const auto findings = taint_of(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> ages;\n"
      "int sum() {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : ages) s += kv.second;\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(has_rule(findings, "taint-unordered"));
  EXPECT_EQ(line_of(findings, "taint-unordered"), 5);
}

TEST(Taint, IteratorAndForEachFormsAreSources) {
  const auto findings = taint_of(
      "#include <unordered_set>\n"
      "std::unordered_set<int> seen;\n"
      "void touch() {\n"
      "  auto it = seen.begin();\n"
      "  std::for_each(seen.cbegin(), seen.cend(), [](int) {});\n"
      "}\n");
  std::size_t unordered = 0;
  for (const auto& f : findings) unordered += f.rule == "taint-unordered";
  EXPECT_GE(unordered, 2u);
}

TEST(Taint, PointerKeyedMapAndPointerHash) {
  const auto findings = taint_of(
      "#include <map>\n"
      "struct Task;\n"
      "std::map<Task*, int> prio;\n"
      "std::size_t h(Task* t) { return std::hash<Task*>{}(t); }\n"
      "void walk() {\n"
      "  for (auto& kv : prio) {}\n"
      "}\n");
  EXPECT_TRUE(has_rule(findings, "taint-pointer-key"));
}

TEST(Taint, FlowFromUnorderedIterationIntoSink) {
  const auto findings = taint_of(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> jobs;\n"
      "void drain(Engine& eng) {\n"
      "  for (auto& kv : jobs) {\n"
      "    int picked = kv.first;\n"
      "    eng.commit(picked);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(has_rule(findings, "taint-flow"));
  EXPECT_EQ(line_of(findings, "taint-flow"), 6);
}

TEST(Taint, ThreadLocalIsFlowOnlyNotAStandaloneFinding) {
  // A thread_local that never reaches a sink is silent...
  const auto clean = taint_of(
      "thread_local int scratch = 0;\n"
      "int bump() { return ++scratch; }\n");
  EXPECT_FALSE(has_rule(clean, "taint-flow"));
  // ...but passing one to an ordering-sensitive sink is a finding.
  const auto flagged = taint_of(
      "thread_local int scratch = 0;\n"
      "void drain(Engine& eng) { eng.push(scratch); }\n");
  EXPECT_TRUE(has_rule(flagged, "taint-flow"));
}

TEST(Taint, SuppressionSilencesTheSource) {
  const auto findings = taint_of(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> ages;\n"
      "int sum() {\n"
      "  int s = 0;\n"
      "  // mris-analyze: allow(taint-unordered)\n"
      "  for (const auto& kv : ages) s += kv.second;\n"
      "  return s;\n"
      "}\n");
  EXPECT_FALSE(has_rule(findings, "taint-unordered"));
}

// --- thread-safety --------------------------------------------------------

std::vector<Finding> ts_of(const std::string& text) {
  std::vector<SourceFile> files = {make_source("t.cpp", text)};
  return analyze_threadsafety(files, Options{});
}

TEST(ThreadSafety, MutableStaticWithoutAnnotationIsFlagged) {
  const auto findings = ts_of(
      "namespace x {\n"
      "static int g_hits = 0;\n"
      "}\n");
  EXPECT_TRUE(has_rule(findings, "ts-global"));
  EXPECT_EQ(line_of(findings, "ts-global"), 2);
}

TEST(ThreadSafety, ConstexprMutexAndAtomicGlobalsAreExempt) {
  const auto findings = ts_of(
      "namespace x {\n"
      "constexpr int kLimit = 8;\n"
      "static const char* kName = \"mris\";\n"
      "static std::mutex g_mu;\n"
      "static std::atomic<int> g_count{0};\n"
      "static std::once_flag g_once;\n"
      "static int g_state MRIS_GUARDED_BY(g_mu) = 0;\n"
      "}\n");
  EXPECT_FALSE(has_rule(findings, "ts-global"));
}

TEST(ThreadSafety, GuardedFieldTouchedWithoutNamingMutex) {
  const auto findings = ts_of(
      "class Queue {\n"
      " public:\n"
      "  void add(int v) { items_.push_back(v); }\n"
      "  int size() const {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    return items_.size();\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::vector<int> items_ MRIS_GUARDED_BY(mu_);\n"
      "};\n");
  // add() never names mu_; size() locks it.
  std::size_t guard = 0;
  for (const auto& f : findings) guard += f.rule == "ts-guard";
  EXPECT_EQ(guard, 1u);
  EXPECT_EQ(line_of(findings, "ts-guard"), 3);
}

TEST(ThreadSafety, RequiresAnnotationInSignatureCountsAsNaming) {
  const auto findings = ts_of(
      "class Queue {\n"
      "  std::mutex mu_;\n"
      "  std::vector<int> items_ MRIS_GUARDED_BY(mu_);\n"
      "  void add_locked(int v) MRIS_REQUIRES(mu_) { items_.push_back(v); }\n"
      "};\n");
  EXPECT_FALSE(has_rule(findings, "ts-guard"));
}

TEST(ThreadSafety, ConstructorIsExemptFromGuardDiscipline) {
  const auto findings = ts_of(
      "class Queue {\n"
      "  std::mutex mu_;\n"
      "  std::vector<int> items_ MRIS_GUARDED_BY(mu_);\n"
      " public:\n"
      "  Queue() { items_.reserve(8); }\n"
      "  ~Queue() { items_.clear(); }\n"
      "};\n");
  EXPECT_FALSE(has_rule(findings, "ts-guard"));
}

TEST(ThreadSafety, GuardRegistrySpansFiles) {
  // Annotation in the header, touch in the .cpp — the pass must join them.
  std::vector<SourceFile> files = {
      make_source("q.hpp",
                  "class Queue {\n"
                  "  std::mutex mu_;\n"
                  "  std::vector<int> items_ MRIS_GUARDED_BY(mu_);\n"
                  "  void add(int v);\n"
                  "};\n"),
      make_source("q.cpp", "void Queue::add(int v) { items_.push_back(v); }\n"),
  };
  const auto findings = analyze_threadsafety(files, Options{});
  ASSERT_TRUE(has_rule(findings, "ts-guard"));
  EXPECT_EQ(findings[0].file, "q.cpp");
}

TEST(ThreadSafety, ByRefCaptureSubmittedToPool) {
  const auto findings = ts_of(
      "void fan_out(util::ThreadPool& pool, int& acc) {\n"
      "  pool.submit([&acc] { ++acc; });\n"
      "  pool.submit([acc] { (void)acc; });\n"
      "}\n");
  std::size_t refcap = 0;
  for (const auto& f : findings) refcap += f.rule == "ts-ref-capture";
  EXPECT_EQ(refcap, 1u);
  EXPECT_EQ(line_of(findings, "ts-ref-capture"), 2);
}

// --- fixtures end to end --------------------------------------------------

std::vector<Finding> analyze_dir(const std::string& dir) {
  const std::vector<std::string> paths = mris::lint::collect_sources(dir);
  std::vector<SourceFile> files;
  std::vector<std::string> rels;
  for (const std::string& p : paths) {
    SourceFile f;
    if (!load_source(p, f)) continue;
    rels.push_back(
        std::filesystem::path(p).lexically_relative(dir).generic_string());
    f.path = rels.back();
    files.push_back(std::move(f));
  }
  const Options options;
  std::vector<Finding> all = analyze_layering(files, rels, options).findings;
  for (const SourceFile& f : files) {
    const auto t = analyze_taint(f, options);
    all.insert(all.end(), t.begin(), t.end());
  }
  const auto ts = analyze_threadsafety(files, options);
  all.insert(all.end(), ts.begin(), ts.end());
  return all;
}

TEST(Fixtures, GoodTreeIsClean) {
  const auto findings = analyze_dir(std::string(MRIS_ANALYZE_FIXTURES) +
                                    "/good");
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s), first: "
      << format_finding(findings.front());
}

TEST(Fixtures, EveryBadTreeTripsItsRule) {
  const std::vector<std::string> rules = {
      "layer-upward", "layer-cycle",     "taint-unordered",
      "taint-pointer-key", "taint-flow", "ts-global",
      "ts-guard",     "ts-ref-capture"};
  for (const std::string& rule : rules) {
    const auto findings =
        analyze_dir(std::string(MRIS_ANALYZE_FIXTURES) + "/bad/" + rule);
    EXPECT_TRUE(has_rule(findings, rule)) << "fixture for " << rule;
  }
}

}  // namespace
}  // namespace mris::analyze
