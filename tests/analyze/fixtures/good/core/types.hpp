// Clean fixture: core may include util (downward edge).
#pragma once

#include <vector>

#include "util/helpers.hpp"

namespace fixture {

struct Item {
  int id = 0;
  double weight = 0.0;
};

// Deterministic ordering before anything order-sensitive happens.
inline void sort_items(std::vector<Item>& items) {
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.id < b.id; });
}

}  // namespace fixture
