// Clean fixture: every construct here is the approved counterpart of a
// bad-fixture finding.
#pragma once

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fixture {

// Value-keyed ordered map: iteration order is the key order, deterministic.
inline int sum_by_name(const std::map<std::string, int>& by_name) {
  int total = 0;
  for (const auto& [name, value] : by_name) total += value;
  return total;
}

// Guarded state whose every accessor names the guard.
class Counter {
 public:
  void add(int v) {
    std::lock_guard lock(mu_);
    hits_ += v;
  }

  int get() const {
    std::lock_guard lock(mu_);
    return hits_;
  }

 private:
  mutable std::mutex mu_;
  int hits_ MRIS_GUARDED_BY(mu_) = 0;
};

// Immutable statics are not shared *mutable* state.
inline const char* mode_name() {
  static constexpr const char* kName = "fixture";
  return kName;
}

}  // namespace fixture
