// BAD: mutable process-wide state with no MRIS_GUARDED_BY annotation.
namespace fixture {

static int g_hits = 0;

int g_mode = 1;

int bump() {
  g_hits += g_mode;
  return g_hits;
}

}  // namespace fixture
