// BAD: the submitted lambda captures a local by reference and nothing
// here joins the future before the frame can exit.
#include <numeric>
#include <vector>

namespace fixture {

struct PoolLike {
  template <typename F>
  void submit(F&& fn);
};

void tally(PoolLike& pool, const std::vector<int>& xs) {
  int acc = 0;
  pool.submit([&acc, &xs] {
    acc = std::accumulate(xs.begin(), xs.end(), 0);
  });
}

}  // namespace fixture
