// BAD: a.hpp -> b.hpp -> a.hpp is an include cycle (same module, so the
// layer ranks are equal — only the cycle detector catches it).
#pragma once

#include "core/b.hpp"

namespace fixture {
struct A {
  int from_b = 0;
};
}  // namespace fixture
