#pragma once

#include "core/a.hpp"

namespace fixture {
struct B {
  int from_a = 0;
};
}  // namespace fixture
