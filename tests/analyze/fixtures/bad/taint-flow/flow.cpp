// BAD: a value whose identity came from unordered iteration reaches an
// ordering-sensitive sink (a schedule commit) without being re-ordered.
#include <string>
#include <unordered_map>

namespace fixture {

void commit(int job);

void drain(const std::unordered_map<std::string, int>& ready) {
  for (const auto& [name, job] : ready) {
    int picked = job;
    commit(picked);
  }
}

}  // namespace fixture
