// BAD: ordered containers keyed by pointers iterate in address order,
// which ASLR re-rolls every run; std::hash<T*> has the same problem.
#include <cstddef>
#include <functional>
#include <map>

namespace fixture {

struct Task {
  int id = 0;
};

int total(const std::map<Task*, int>& by_addr) {
  int sum = 0;
  for (const auto& [task, count] : by_addr) sum += count;
  return sum;
}

std::size_t slot(Task* t) { return std::hash<Task*>{}(t); }

}  // namespace fixture
