// BAD: iterator-based traversal of an unordered container — the order the
// lexical range-for rule cannot see.
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<std::string> keys(const std::unordered_map<std::string, int>& m) {
  const std::unordered_map<std::string, int>& names = m;
  std::vector<std::string> out;
  for (auto it = names.begin(); it != names.end(); ++it) {
    out.push_back(it->first);
  }
  return out;
}

}  // namespace fixture
