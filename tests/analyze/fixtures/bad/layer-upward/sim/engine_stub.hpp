#pragma once

namespace fixture {
struct EngineStub {
  int shards = 1;
};
}  // namespace fixture
