// BAD: util is the bottom layer; including sim/ is an upward edge.
#pragma once

#include "sim/engine_stub.hpp"

namespace fixture {
inline int shard_count(const EngineStub& e) { return e.shards; }
}  // namespace fixture
