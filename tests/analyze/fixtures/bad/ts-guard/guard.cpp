// BAD: `add` touches a MRIS_GUARDED_BY(mu_) field without naming the
// guard — no lock taken, no MRIS_REQUIRES(mu_) on the signature.  (This is
// also the gate-red demonstration for the annotations themselves: the good
// fixture's Counter only passes *because* its accessors lock mu_.)
#include <mutex>
#include <vector>

namespace fixture {

class Queue {
 public:
  void add(int v) { items_.push_back(v); }

 private:
  std::mutex mu_;
  std::vector<int> items_ MRIS_GUARDED_BY(mu_);
};

}  // namespace fixture
