#include <gtest/gtest.h>

#include "knapsack/knapsack.hpp"
#include "util/rng.hpp"

namespace mris::knapsack {
namespace {

std::vector<Item> random_items(util::Xoshiro256& rng, std::size_t n) {
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({util::uniform(rng, 0.1, 9.0),
                     util::uniform(rng, 0.5, 10.0),
                     static_cast<std::int32_t>(i)});
  }
  return items;
}

TEST(BranchAndBoundTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(solve_branch_and_bound({}, 10.0).tags.empty());
  const std::vector<Item> items = {{1.0, 1.0, 0}};
  EXPECT_TRUE(solve_branch_and_bound(items, 0.0).tags.empty());
  EXPECT_TRUE(solve_branch_and_bound(items, -3.0).tags.empty());
}

TEST(BranchAndBoundTest, SolvesClassicInstance) {
  const std::vector<Item> items = {
      {6.0, 30.0, 0}, {4.0, 14.0, 1}, {6.0, 16.0, 2}, {3.0, 9.0, 3}};
  const Selection s = solve_branch_and_bound(items, 10.0);
  EXPECT_DOUBLE_EQ(s.total_profit, 44.0);
  EXPECT_LE(s.total_size, 10.0);
}

TEST(BranchAndBoundTest, HandlesRealValuedSizes) {
  const std::vector<Item> items = {
      {2.5, 10.0, 0}, {2.6, 10.0, 1}, {5.2, 19.0, 2}};
  const Selection s = solve_branch_and_bound(items, 5.2);
  // {0, 1} has size 5.1 <= 5.2 and profit 20 > 19.
  EXPECT_DOUBLE_EQ(s.total_profit, 20.0);
}

TEST(BranchAndBoundTest, NodeBudgetEnforced) {
  util::Xoshiro256 rng(1);
  const auto items = random_items(rng, 40);
  EXPECT_THROW(solve_branch_and_bound(items, 100.0, /*max_nodes=*/5),
               std::runtime_error);
}

class BnbVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BnbVsBruteForce, MatchesBruteForceOptimum) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 57527);
  const std::size_t n = 4 + util::uniform_index(rng, 14);
  const auto items = random_items(rng, n);
  const double capacity = util::uniform(rng, 3.0, 30.0);
  const Selection bnb = solve_branch_and_bound(items, capacity);
  const Selection bf = solve_bruteforce(items, capacity);
  EXPECT_NEAR(bnb.total_profit, bf.total_profit, 1e-9);
  EXPECT_LE(bnb.total_size, capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BnbVsBruteForce,
                         ::testing::Range(1, 25));

TEST(BranchAndBoundTest, SolvesLargerInstancesThanBruteForceCould) {
  util::Xoshiro256 rng(99);
  const auto items = random_items(rng, 200);
  double total = 0.0;
  for (const auto& it : items) total += it.size;
  const Selection s = solve_branch_and_bound(items, total / 3.0);
  EXPECT_GT(s.total_profit, 0.0);
  EXPECT_LE(s.total_size, total / 3.0 + 1e-9);
  // CADP must dominate the exact optimum's profit (Lemma 6.1) — use B&B as
  // the oracle at a size brute force cannot reach.
  const Selection cadp = solve_cadp(items, total / 3.0, 0.5);
  EXPECT_GE(cadp.total_profit + 1e-9, s.total_profit);
}

}  // namespace
}  // namespace mris::knapsack
