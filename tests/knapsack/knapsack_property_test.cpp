// Property-based sweeps of the constraint-approximation guarantees
// (Lemma 6.1 and Remark 1) against the brute-force oracle on random
// instances.
#include <gtest/gtest.h>

#include <tuple>

#include "knapsack/knapsack.hpp"
#include "util/rng.hpp"

namespace mris::knapsack {
namespace {

std::vector<Item> random_items(util::Xoshiro256& rng, std::size_t n,
                               double max_size) {
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({util::uniform(rng, 0.1, max_size),
                     util::uniform(rng, 0.5, 10.0),
                     static_cast<std::int32_t>(i)});
  }
  return items;
}

// Parameter: (seed, num_items, eps).
class CadpProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CadpProperty, DominatesOptimalProfitWithinCapacitySlack) {
  const auto [seed, n, eps] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7919);
  const auto items = random_items(rng, static_cast<std::size_t>(n), 8.0);
  const double capacity = util::uniform(rng, 4.0, 20.0);

  const Selection opt = solve_bruteforce(items, capacity);
  const Selection cadp = solve_cadp(items, capacity, eps);

  // Lemma 6.1: profit >= OPT and size <= (1 + eps) * capacity.
  EXPECT_GE(cadp.total_profit + 1e-9, opt.total_profit)
      << "n=" << n << " eps=" << eps << " cap=" << capacity;
  EXPECT_LE(cadp.total_size, (1.0 + eps) * capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, CadpProperty,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(5, 10, 14),
                       ::testing::Values(0.1, 0.5, 0.9)));

class GreedyProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(GreedyProperty, DominatesOptimalProfitWithinDoubleCapacity) {
  const auto [seed, n] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 104729);
  const auto items = random_items(rng, static_cast<std::size_t>(n), 8.0);
  const double capacity = util::uniform(rng, 4.0, 20.0);

  const Selection opt = solve_bruteforce(items, capacity);
  const Selection greedy = solve_greedy_constraint(items, capacity);

  // Remark 1: profit >= OPT and size <= 2 * capacity.
  EXPECT_GE(greedy.total_profit + 1e-9, opt.total_profit);
  EXPECT_LE(greedy.total_size, 2.0 * capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyProperty,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Values(6, 12, 18)));

class GreedyHalfProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GreedyHalfProperty, HalfApproximationWithinCapacity) {
  const auto [seed, n] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1299709);
  const auto items = random_items(rng, static_cast<std::size_t>(n), 8.0);
  const double capacity = util::uniform(rng, 4.0, 20.0);

  const Selection opt = solve_bruteforce(items, capacity);
  const Selection half = solve_greedy_half(items, capacity);

  EXPECT_LE(half.total_size, capacity + 1e-9);
  EXPECT_GE(half.total_profit + 1e-9, 0.5 * opt.total_profit);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyHalfProperty,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Values(6, 12)));

class ExactDpProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExactDpProperty, MatchesBruteForceOnIntegerInstances) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  std::vector<Item> items;
  const std::size_t n = 4 + util::uniform_index(rng, 10);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({static_cast<double>(util::uniform_int(rng, 1, 12)),
                     util::uniform(rng, 0.5, 10.0),
                     static_cast<std::int32_t>(i)});
  }
  const std::int64_t capacity = util::uniform_int(rng, 5, 40);
  const Selection dp = solve_exact_dp(items, capacity);
  const Selection bf = solve_bruteforce(items, static_cast<double>(capacity));
  EXPECT_NEAR(dp.total_profit, bf.total_profit, 1e-9);
  EXPECT_LE(dp.total_size, static_cast<double>(capacity));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExactDpProperty,
                         ::testing::Range(1, 25));

TEST(SelectionConsistencyTest, TotalsMatchSelectedTags) {
  util::Xoshiro256 rng(2024);
  const auto items = random_items(rng, 12, 6.0);
  const Selection s = solve_cadp(items, 15.0, 0.4);
  double size = 0.0, profit = 0.0;
  for (std::int32_t tag : s.tags) {
    size += items[static_cast<std::size_t>(tag)].size;
    profit += items[static_cast<std::size_t>(tag)].profit;
  }
  EXPECT_NEAR(size, s.total_size, 1e-9);
  EXPECT_NEAR(profit, s.total_profit, 1e-9);
  // No duplicates.
  auto tags = s.tags;
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end());
}

}  // namespace
}  // namespace mris::knapsack
