// Property-based sweeps of the constraint-approximation guarantees
// (Lemma 6.1 and Remark 1) against the brute-force oracle, driven by the
// testkit: items come from label-derived streams (adding a sweep never
// perturbs another sweep's draws), adversarial equal-profit/equal-size tie
// groups ride along, and a violated property is handed to shrink_items()
// so the failure report is a minimal item list, not a 18-item haystack.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "knapsack/knapsack.hpp"
#include "testkit/shrinker.hpp"
#include "testkit/streams.hpp"

namespace mris::knapsack {
namespace {

using testkit::ItemsPredicate;
using testkit::make_stream;
using testkit::shrink_items;

std::vector<Item> random_items(util::Xoshiro256& rng, std::size_t n,
                               double max_size) {
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({util::uniform(rng, 0.1, max_size),
                     util::uniform(rng, 0.5, 10.0),
                     static_cast<std::int32_t>(i)});
  }
  return items;
}

/// Tie-heavy variant: groups of items with bit-identical (size, profit),
/// the degenerate inputs where only deterministic tie-breaking separates
/// solutions (testkit's knapsack-ties family, at the item level).
std::vector<Item> tied_items(util::Xoshiro256& rng, std::size_t n) {
  std::vector<Item> items;
  while (items.size() < n) {
    const std::size_t group =
        std::min(n - items.size(), 2 + util::uniform_index(rng, 4));
    const double size = static_cast<double>(util::uniform_int(rng, 1, 12)) / 2.0;
    const double profit = static_cast<double>(util::uniform_int(rng, 1, 8));
    for (std::size_t g = 0; g < group; ++g) {
      items.push_back({size, profit, static_cast<std::int32_t>(items.size())});
    }
  }
  return items;
}

std::string describe(const std::vector<Item>& items) {
  std::ostringstream out;
  out.precision(17);
  for (const Item& item : items) {
    out << "  {size=" << item.size << ", profit=" << item.profit << "}\n";
  }
  return out.str();
}

/// Asserts `holds` on `items`; on violation, shrinks to a minimal failing
/// item list and reports that instead.
void expect_property(const std::vector<Item>& items,
                     const std::function<bool(const std::vector<Item>&)>& holds,
                     const std::string& what) {
  if (holds(items)) return;
  const ItemsPredicate fails = [&](const std::vector<Item>& v) {
    return !holds(v);
  };
  testkit::ShrinkStats stats;
  const std::vector<Item> minimal = shrink_items(items, fails, {}, &stats);
  FAIL() << what << " violated; minimized from " << items.size() << " to "
         << minimal.size() << " items (" << stats.predicate_calls
         << " predicate calls):\n"
         << describe(minimal);
}

// Parameter: (seed, num_items, eps).
class CadpProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CadpProperty, DominatesOptimalProfitWithinCapacitySlack) {
  const auto [seed, n, eps] = GetParam();
  util::Xoshiro256 rng =
      make_stream(static_cast<std::uint64_t>(seed), "knapsack-cadp");
  const auto items = random_items(rng, static_cast<std::size_t>(n), 8.0);
  const double capacity = util::uniform(rng, 4.0, 20.0);

  // Lemma 6.1: profit >= OPT and size <= (1 + eps) * capacity.
  const double e = eps;
  expect_property(
      items,
      [capacity, e](const std::vector<Item>& v) {
        const Selection opt = solve_bruteforce(v, capacity);
        const Selection cadp = solve_cadp(v, capacity, e);
        return cadp.total_profit + 1e-9 >= opt.total_profit &&
               cadp.total_size <= (1.0 + e) * capacity + 1e-9;
      },
      "Lemma 6.1 (CADP)");
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, CadpProperty,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(5, 10, 14),
                       ::testing::Values(0.1, 0.5, 0.9)));

class CadpTieProperty : public ::testing::TestWithParam<int> {};

TEST_P(CadpTieProperty, StableOnEqualProfitTieGroups) {
  util::Xoshiro256 rng = make_stream(
      static_cast<std::uint64_t>(GetParam()), "knapsack-cadp-ties");
  const auto items = tied_items(rng, 12);
  const double capacity = util::uniform(rng, 4.0, 16.0);
  expect_property(
      items,
      [capacity](const std::vector<Item>& v) {
        const Selection opt = solve_bruteforce(v, capacity);
        const Selection a = solve_cadp(v, capacity, 0.5);
        const Selection b = solve_cadp(v, capacity, 0.5);
        // Guarantee *and* determinism on fully degenerate inputs.
        return a.total_profit + 1e-9 >= opt.total_profit &&
               a.total_size <= 1.5 * capacity + 1e-9 && a.tags == b.tags;
      },
      "CADP on tie groups");
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CadpTieProperty,
                         ::testing::Range(1, 9));

class GreedyProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(GreedyProperty, DominatesOptimalProfitWithinDoubleCapacity) {
  const auto [seed, n] = GetParam();
  util::Xoshiro256 rng =
      make_stream(static_cast<std::uint64_t>(seed), "knapsack-greedy");
  const auto items = random_items(rng, static_cast<std::size_t>(n), 8.0);
  const double capacity = util::uniform(rng, 4.0, 20.0);

  // Remark 1: profit >= OPT and size <= 2 * capacity.
  expect_property(
      items,
      [capacity](const std::vector<Item>& v) {
        const Selection opt = solve_bruteforce(v, capacity);
        const Selection greedy = solve_greedy_constraint(v, capacity);
        return greedy.total_profit + 1e-9 >= opt.total_profit &&
               greedy.total_size <= 2.0 * capacity + 1e-9;
      },
      "Remark 1 (greedy)");
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyProperty,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Values(6, 12, 18)));

class GreedyHalfProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GreedyHalfProperty, HalfApproximationWithinCapacity) {
  const auto [seed, n] = GetParam();
  util::Xoshiro256 rng =
      make_stream(static_cast<std::uint64_t>(seed), "knapsack-greedy-half");
  const auto items = random_items(rng, static_cast<std::size_t>(n), 8.0);
  const double capacity = util::uniform(rng, 4.0, 20.0);

  expect_property(
      items,
      [capacity](const std::vector<Item>& v) {
        const Selection opt = solve_bruteforce(v, capacity);
        const Selection half = solve_greedy_half(v, capacity);
        return half.total_size <= capacity + 1e-9 &&
               half.total_profit + 1e-9 >= 0.5 * opt.total_profit;
      },
      "half-approximation");
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyHalfProperty,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Values(6, 12)));

class ExactDpProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExactDpProperty, MatchesBruteForceOnIntegerInstances) {
  util::Xoshiro256 rng = make_stream(
      static_cast<std::uint64_t>(GetParam()), "knapsack-exact-dp");
  std::vector<Item> items;
  const std::size_t n = 4 + util::uniform_index(rng, 10);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({static_cast<double>(util::uniform_int(rng, 1, 12)),
                     util::uniform(rng, 0.5, 10.0),
                     static_cast<std::int32_t>(i)});
  }
  const std::int64_t capacity = util::uniform_int(rng, 5, 40);
  expect_property(
      items,
      [capacity](const std::vector<Item>& v) {
        const Selection dp = solve_exact_dp(v, capacity);
        const Selection bf =
            solve_bruteforce(v, static_cast<double>(capacity));
        return std::abs(dp.total_profit - bf.total_profit) <= 1e-9 &&
               dp.total_size <= static_cast<double>(capacity);
      },
      "exact DP vs brute force");
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExactDpProperty,
                         ::testing::Range(1, 25));

TEST(SelectionConsistencyTest, TotalsMatchSelectedTags) {
  util::Xoshiro256 rng = make_stream(2024, "knapsack-consistency");
  const auto items = random_items(rng, 12, 6.0);
  const Selection s = solve_cadp(items, 15.0, 0.4);
  double size = 0.0, profit = 0.0;
  for (std::int32_t tag : s.tags) {
    size += items[static_cast<std::size_t>(tag)].size;
    profit += items[static_cast<std::size_t>(tag)].profit;
  }
  EXPECT_NEAR(size, s.total_size, 1e-9);
  EXPECT_NEAR(profit, s.total_profit, 1e-9);
  // No duplicates.
  auto tags = s.tags;
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end());
}

}  // namespace
}  // namespace mris::knapsack
