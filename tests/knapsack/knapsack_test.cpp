#include "knapsack/knapsack.hpp"

#include <gtest/gtest.h>

namespace mris::knapsack {
namespace {

std::vector<Item> classic_items() {
  // (size, profit): a classic instance with optimum {1, 2} at capacity 10.
  return {{6.0, 30.0, 0}, {4.0, 14.0, 1}, {6.0, 16.0, 2}, {3.0, 9.0, 3}};
}

TEST(BruteForceTest, FindsKnownOptimum) {
  const Selection s = solve_bruteforce(classic_items(), 10.0);
  EXPECT_DOUBLE_EQ(s.total_profit, 44.0);
  EXPECT_LE(s.total_size, 10.0);
}

TEST(BruteForceTest, ZeroCapacitySelectsNothing) {
  const Selection s = solve_bruteforce(classic_items(), 0.0);
  EXPECT_TRUE(s.tags.empty());
  EXPECT_DOUBLE_EQ(s.total_profit, 0.0);
}

TEST(BruteForceTest, RejectsTooManyItems) {
  std::vector<Item> items(31, Item{1.0, 1.0, 0});
  EXPECT_THROW(solve_bruteforce(items, 5.0), std::invalid_argument);
}

TEST(ExactDpTest, MatchesBruteForce) {
  const auto items = classic_items();
  const Selection dp = solve_exact_dp(items, 10);
  const Selection bf = solve_bruteforce(items, 10.0);
  EXPECT_DOUBLE_EQ(dp.total_profit, bf.total_profit);
  EXPECT_LE(dp.total_size, 10.0);
}

TEST(ExactDpTest, RejectsFractionalSizes) {
  const std::vector<Item> items = {{1.5, 1.0, 0}};
  EXPECT_THROW(solve_exact_dp(items, 10), std::invalid_argument);
}

TEST(ExactDpTest, NegativeCapacityYieldsEmpty) {
  EXPECT_TRUE(solve_exact_dp(classic_items(), -1).tags.empty());
}

TEST(ExactDpTest, AllItemsFitWhenCapacityLarge) {
  const Selection s = solve_exact_dp(classic_items(), 1000);
  EXPECT_EQ(s.tags.size(), 4u);
  EXPECT_DOUBLE_EQ(s.total_profit, 69.0);
}

TEST(ExactDpTest, SkipsZeroProfitItems) {
  const std::vector<Item> items = {{1.0, 0.0, 0}, {1.0, 5.0, 1}};
  const Selection s = solve_exact_dp(items, 10);
  ASSERT_EQ(s.tags.size(), 1u);
  EXPECT_EQ(s.tags[0], 1);
}

TEST(CadpTest, ProfitAtLeastOptimalWithinCapacitySlack) {
  const auto items = classic_items();
  for (double eps : {0.1, 0.3, 0.5, 0.9}) {
    const Selection s = solve_cadp(items, 10.0, eps);
    EXPECT_GE(s.total_profit, 44.0) << "eps=" << eps;
    EXPECT_LE(s.total_size, (1.0 + eps) * 10.0 + 1e-9) << "eps=" << eps;
  }
}

TEST(CadpTest, RejectsBadEps) {
  EXPECT_THROW(solve_cadp(classic_items(), 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(solve_cadp(classic_items(), 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_cadp(classic_items(), 10.0, -0.5),
               std::invalid_argument);
}

TEST(CadpTest, EmptyInputsYieldEmptySelection) {
  EXPECT_TRUE(solve_cadp({}, 10.0, 0.5).tags.empty());
  EXPECT_TRUE(solve_cadp(classic_items(), 0.0, 0.5).tags.empty());
}

TEST(CadpTest, TagsAreReturnedNotIndices) {
  const std::vector<Item> items = {{1.0, 10.0, 42}, {100.0, 1.0, 7}};
  const Selection s = solve_cadp(items, 2.0, 0.5);
  ASSERT_EQ(s.tags.size(), 1u);
  EXPECT_EQ(s.tags[0], 42);
}

TEST(GreedyConstraintTest, ProfitAtLeastOptimalWithinDoubleCapacity) {
  const auto items = classic_items();
  const Selection s = solve_greedy_constraint(items, 10.0);
  EXPECT_GE(s.total_profit, 44.0);
  EXPECT_LE(s.total_size, 2.0 * 10.0 + 1e-9);
}

TEST(GreedyConstraintTest, SkipsOversizedItems) {
  const std::vector<Item> items = {{50.0, 1000.0, 0}, {1.0, 1.0, 1}};
  const Selection s = solve_greedy_constraint(items, 10.0);
  ASSERT_EQ(s.tags.size(), 1u);
  EXPECT_EQ(s.tags[0], 1);
}

TEST(GreedyConstraintTest, StopsAfterFirstOverflowItem) {
  // Density order: items 0, 1, 2.  Prefix 0+1 = 9 <= 10; adding 2 makes 15
  // (> 10), so it is included and iteration stops before item 3.
  const std::vector<Item> items = {
      {4.0, 40.0, 0}, {5.0, 40.0, 1}, {6.0, 30.0, 2}, {1.0, 1.0, 3}};
  const Selection s = solve_greedy_constraint(items, 10.0);
  EXPECT_EQ(s.tags.size(), 3u);
  EXPECT_DOUBLE_EQ(s.total_size, 15.0);
}

TEST(GreedyHalfTest, WithinCapacityAndHalfOptimal) {
  const auto items = classic_items();
  const Selection s = solve_greedy_half(items, 10.0);
  EXPECT_LE(s.total_size, 10.0);
  EXPECT_GE(s.total_profit, 0.5 * 44.0);
}

TEST(GreedyHalfTest, PicksBestSingleWhenPrefixIsPoor) {
  // Density favours the small item, but the big item alone is worth more.
  const std::vector<Item> items = {{1.0, 10.0, 0}, {10.0, 60.0, 1}};
  const Selection s = solve_greedy_half(items, 10.0);
  ASSERT_EQ(s.tags.size(), 1u);
  EXPECT_EQ(s.tags[0], 1);
}

TEST(BackendDispatchTest, RoutesToBothBackends) {
  const auto items = classic_items();
  const Selection cadp =
      solve_constraint_approx(Backend::kCadp, items, 10.0, 0.5);
  const Selection greedy =
      solve_constraint_approx(Backend::kGreedyConstraint, items, 10.0, 0.5);
  EXPECT_GE(cadp.total_profit, 44.0);
  EXPECT_GE(greedy.total_profit, 44.0);
  EXPECT_STREQ(backend_name(Backend::kCadp), "CADP");
  EXPECT_STREQ(backend_name(Backend::kGreedyConstraint), "GREEDY");
}

}  // namespace
}  // namespace mris::knapsack
