// Differential test for IncrementalCadp (knapsack/incremental.hpp): across
// randomized arrival streams — items appended one at a time, capacity and
// eps drifting between solves, interleaved prepare()/note_arrival()/
// invalidate() calls — every solve() must return a Selection byte-identical
// to a from-scratch solve_cadp on the same inputs.  The class is a pure
// decision-path accelerator; if any byte differs, the daemon's replay and
// recovery guarantees collapse.
#include "knapsack/incremental.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "testkit/generators.hpp"
#include "testkit/streams.hpp"
#include "util/rng.hpp"

namespace mris::knapsack {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_identical(const Selection& got, const Selection& want,
                      const std::string& where) {
  ASSERT_EQ(got.tags, want.tags) << where;
  EXPECT_TRUE(same_bits(got.total_profit, want.total_profit)) << where;
  EXPECT_TRUE(same_bits(got.total_size, want.total_size)) << where;
}

/// Items derived from a generated instance, in job order — the same
/// (volume, weight, id) triples MRIS hands to the knapsack.
std::vector<Item> items_from_family(testkit::Family family,
                                    std::uint64_t seed, std::size_t jobs) {
  testkit::GenConfig config;
  config.num_jobs = jobs;
  const Instance inst = testkit::make_family_instance(family, config, seed);
  std::vector<Item> items;
  for (const Job& j : inst.jobs()) {
    items.push_back(Item{j.volume(), j.weight, j.id});
  }
  return items;
}

TEST(IncrementalCadpTest, ArrivalStreamsMatchFromScratchSolves) {
  const std::size_t iters = testkit::fuzz_iters(4);
  for (testkit::Family family :
       {testkit::Family::kMixed, testkit::Family::kKnapsackTies,
        testkit::Family::kNearCapacity}) {
    for (std::uint64_t seed = 0; seed < iters; ++seed) {
      const std::vector<Item> all = items_from_family(family, seed, 24);
      util::Xoshiro256 rng = testkit::make_stream(seed, "inc-cadp-stream");
      IncrementalCadp inc;
      std::vector<Item> items;
      double capacity = 1.0;
      for (const Item& item : all) {
        // Arrival: append the item, drift the capacity, pre-grow rows.
        items.push_back(item);
        capacity += item.size * (0.5 + 0.001 * util::uniform_index(rng, 500));
        const double eps = 0.1 + 0.05 * util::uniform_index(rng, 8);
        inc.note_arrival(items.size() + 1, eps);

        // Sometimes speculate before the wakeup, sometimes drop the memo —
        // neither may change the solved bytes.
        const std::size_t dice = util::uniform_index(rng, 4);
        if (dice == 0) inc.prepare(items, capacity, eps);
        if (dice == 1) inc.invalidate();

        const Selection& got = inc.solve(items, capacity, eps);
        const Selection want = solve_cadp(items, capacity, eps);
        expect_identical(got, want,
                         std::string(testkit::family_name(family)) +
                             " seed " + std::to_string(seed) + " n=" +
                             std::to_string(items.size()));

        // Re-solving the identical problem must hit the memo and still
        // return identical bytes.
        const std::size_t hits_before = inc.stats().memo_hits;
        expect_identical(inc.solve(items, capacity, eps), want, "memo re-solve");
        EXPECT_EQ(inc.stats().memo_hits, hits_before + 1);
      }
    }
  }
}

TEST(IncrementalCadpTest, PreparedSolveIsAMemoHit) {
  const std::vector<Item> items =
      items_from_family(testkit::Family::kMixed, 17, 16);
  IncrementalCadp inc;
  inc.prepare(items, 4.0, 0.25);
  EXPECT_EQ(inc.stats().speculative, 1u);
  EXPECT_EQ(inc.stats().full_solves, 1u);

  const Selection& got = inc.solve(items, 4.0, 0.25);
  EXPECT_EQ(inc.stats().solves, 1u);
  EXPECT_EQ(inc.stats().memo_hits, 1u);
  EXPECT_EQ(inc.stats().full_solves, 1u);  // no second from-scratch run
  expect_identical(got, solve_cadp(items, 4.0, 0.25), "prepared solve");

  // A second prepare() on the identical problem is a no-op.
  inc.prepare(items, 4.0, 0.25);
  EXPECT_EQ(inc.stats().speculative, 1u);
}

TEST(IncrementalCadpTest, AnyInputChangeMissesTheMemo) {
  std::vector<Item> items =
      items_from_family(testkit::Family::kKnapsackTies, 3, 12);
  IncrementalCadp inc;
  inc.solve(items, 3.0, 0.25);
  const std::size_t base = inc.stats().full_solves;

  // Capacity, eps, item count, and a single item field each force a fresh
  // solve — matches() must compare bit-for-bit.
  inc.solve(items, 3.5, 0.25);
  EXPECT_EQ(inc.stats().full_solves, base + 1);
  inc.solve(items, 3.5, 0.5);
  EXPECT_EQ(inc.stats().full_solves, base + 2);
  items.push_back(Item{0.5, 1.0, 99});
  inc.solve(items, 3.5, 0.5);
  EXPECT_EQ(inc.stats().full_solves, base + 3);
  items.back().profit += 1e-9;
  const Selection want = solve_cadp(items, 3.5, 0.5);
  expect_identical(inc.solve(items, 3.5, 0.5), want, "perturbed item");
  EXPECT_EQ(inc.stats().full_solves, base + 4);

  inc.invalidate();
  inc.solve(items, 3.5, 0.5);
  EXPECT_EQ(inc.stats().full_solves, base + 5);  // memo dropped
}

TEST(IncrementalCadpTest, NoteArrivalGrowsPooledRows) {
  IncrementalCadp inc;
  const std::size_t before = pooled_dp_row_capacity();
  // floor(4096 / 0.1) + 1 cells — far beyond any prior test's reservation.
  inc.note_arrival(4096, 0.1);
  EXPECT_GE(pooled_dp_row_capacity(), 40961u);
  EXPECT_GE(pooled_dp_row_capacity(), before);
  EXPECT_EQ(inc.stats().rows_reserved, 1u);
  // Degenerate inputs must be safe no-ops.
  inc.note_arrival(0, 0.1);
  inc.note_arrival(16, 0.0);
}

}  // namespace
}  // namespace mris::knapsack
