#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "sim/resource_profile.hpp"

namespace mris::util {
namespace {

TEST(ContractsTest, DefaultModeIsThrow) {
  EXPECT_EQ(contract_mode(), ContractMode::kThrow);
}

TEST(ContractsTest, PassingContractsAreSilent) {
  EXPECT_NO_THROW(MRIS_EXPECT(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(MRIS_ENSURE(true, "trivially true"));
  EXPECT_NO_THROW(MRIS_INVARIANT(2 > 1, "ordering works"));
}

TEST(ContractsTest, ThrowModeRaisesContractViolation) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(MRIS_EXPECT(false, "must fail"), ContractViolation);
  // ContractViolation is a std::logic_error so existing handlers work.
  EXPECT_THROW(MRIS_ENSURE(false, "must fail"), std::logic_error);
}

TEST(ContractsTest, ViolationMessageCarriesKindLocationAndCondition) {
  ScopedContractMode guard(ContractMode::kThrow);
  try {
    MRIS_INVARIANT(1 == 2, "the impossible happened");
    FAIL() << "contract did not fire";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("the impossible happened"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
  }
}

TEST(ContractsTest, CountModeLogsAndContinues) {
  ScopedContractMode guard(ContractMode::kCount);
  reset_contract_violation_count();
  EXPECT_NO_THROW(MRIS_EXPECT(false, "counted, not thrown"));
  EXPECT_NO_THROW(MRIS_INVARIANT(false, "counted, not thrown"));
  EXPECT_EQ(contract_violation_count(), 2u);
  MRIS_ENSURE(true, "passing checks do not count");
  EXPECT_EQ(contract_violation_count(), 2u);
  reset_contract_violation_count();
  EXPECT_EQ(contract_violation_count(), 0u);
}

TEST(ContractsTest, ScopedModeRestoresPrevious) {
  const ContractMode before = contract_mode();
  {
    ScopedContractMode guard(ContractMode::kCount);
    EXPECT_EQ(contract_mode(), ContractMode::kCount);
  }
  EXPECT_EQ(contract_mode(), before);
}

TEST(ContractsDeathTest, AbortModeAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScopedContractMode guard(ContractMode::kAbort);
  EXPECT_DEATH(MRIS_EXPECT(false, "fatal precondition"),
               "contract violation.*fatal precondition");
}

// --- the NDEBUG hole, regression-tested ------------------------------------
// The default tier-1 build is RelWithDebInfo, which defines NDEBUG and
// compiles `assert` out.  These tests pin down that the contracts that
// replaced the simulator's asserts fire in THIS build configuration.

TEST(ContractsNdebugTest, ContractsFireEvenWhereAssertWouldNot) {
#ifdef NDEBUG
  // In this configuration a naked assert(false) would be a silent no-op —
  // exactly the hole the contracts subsystem closes.
  const bool assert_is_compiled_out = true;
#else
  const bool assert_is_compiled_out = false;
#endif
  (void)assert_is_compiled_out;
  EXPECT_THROW(MRIS_INVARIANT(false, "fires in every build type"),
               ContractViolation);
}

TEST(ContractsNdebugTest, ResourceProfileDimensionContractFires) {
  // Was assert(demand.size() == num_resources_): compiled out in the
  // tier-1 build, i.e. an out-of-bounds demand silently corrupted usage.
  ResourceProfile profile(2);
  const std::vector<double> wrong_dim = {0.5};
  EXPECT_THROW(profile.reserve(0.0, 1.0, wrong_dim), ContractViolation);
  EXPECT_THROW(profile.fits(0.0, 1.0, wrong_dim), ContractViolation);
  EXPECT_THROW(profile.release(0.0, 1.0, wrong_dim), ContractViolation);
}

TEST(ContractsNdebugTest, CapacityPostconditionFiresOnDoubleBooking) {
  // reserve() without a fits() check was previously unchecked at any
  // build type: two 0.8-demand reservations overlap silently.
  ResourceProfile profile(1);
  const std::vector<double> demand = {0.8};
  profile.reserve(0.0, 1.0, demand);
  EXPECT_THROW(profile.reserve(0.5, 1.0, demand), ContractViolation);
}

TEST(ContractsNdebugTest, ForceReserveMayExceedCapacity) {
  // The outage-block/straggler path is exempt by design.
  ResourceProfile profile(1);
  const std::vector<double> demand = {0.8};
  profile.reserve(0.0, 1.0, demand);
  EXPECT_NO_THROW(profile.force_reserve(0.5, 1.0, demand));
  EXPECT_GT(profile.usage_at(0.75, 0), 1.0);
}

TEST(ContractsNdebugTest, ReleaseOfUnreservedDemandFires) {
  ResourceProfile profile(1);
  const std::vector<double> demand = {0.5};
  EXPECT_THROW(profile.release(0.0, 1.0, demand), ContractViolation);
}

TEST(ContractsNdebugTest, StartOncePreconditionFires) {
  Schedule schedule(2);
  schedule.assign(0, 0, 1.0);
  EXPECT_THROW(schedule.assign(0, 1, 2.0), ContractViolation);
  EXPECT_THROW(schedule.unassign(1), ContractViolation);
}

}  // namespace
}  // namespace mris::util
