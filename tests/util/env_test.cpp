#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/contracts.hpp"

namespace mris::util {
namespace {

/// Sets an environment variable for one test and restores it after.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

constexpr const char* kVar = "MRIS_ENV_TEST_VAR";

TEST(EnvTest, UnsetOrEmptyFallsBack) {
  ScopedEnv unset(kVar, nullptr);
  EXPECT_DOUBLE_EQ(env_double(kVar, 2.5), 2.5);
  EXPECT_EQ(env_int(kVar, -7), -7);
  EXPECT_EQ(env_string(kVar, "fb"), "fb");
  ScopedEnv empty(kVar, "");
  EXPECT_DOUBLE_EQ(env_double(kVar, 2.5), 2.5);
  EXPECT_EQ(env_int(kVar, -7), -7);
}

TEST(EnvTest, ParsesWellFormedValues) {
  ScopedEnv d(kVar, "3.25e2");
  EXPECT_DOUBLE_EQ(env_double(kVar, 0.0), 325.0);
  ScopedEnv i(kVar, "-42");
  EXPECT_EQ(env_int(kVar, 0), -42);
  EXPECT_EQ(env_string(kVar, ""), "-42");
}

// The original parsers silently fell back on malformed values —
// MRIS_BENCH_SCALE=4x quietly ran the bench at scale 1.0.  Now a
// set-but-garbage knob is a contract violation.
TEST(EnvTest, MalformedValueViolatesContract) {
  ScopedContractMode mode(ContractMode::kThrow);
  ScopedEnv bad(kVar, "4x");
  EXPECT_THROW(env_double(kVar, 1.0), ContractViolation);
  EXPECT_THROW(env_int(kVar, 1), ContractViolation);
  ScopedEnv frac(kVar, "1.5");
  EXPECT_THROW(env_int(kVar, 1), ContractViolation);  // int knob, double value
}

TEST(EnvTest, OutOfRangeValueViolatesContract) {
  ScopedContractMode mode(ContractMode::kThrow);
  ScopedEnv huge_d(kVar, "1e999");
  EXPECT_THROW(env_double(kVar, 1.0), ContractViolation);
  ScopedEnv huge_i(kVar, "99999999999999999999999");
  EXPECT_THROW(env_int(kVar, 1), ContractViolation);
}

TEST(EnvTest, BenchKnobsRejectNonPositiveValues) {
  ScopedContractMode mode(ContractMode::kThrow);
  {
    ScopedEnv scale("MRIS_BENCH_SCALE", "0");
    EXPECT_THROW(bench_scale(), ContractViolation);
  }
  {
    ScopedEnv scale("MRIS_BENCH_SCALE", "-1");
    EXPECT_THROW(bench_scale(), ContractViolation);
  }
  {
    ScopedEnv reps("MRIS_REPS", "0");
    EXPECT_THROW(bench_reps(), ContractViolation);
  }
  {
    ScopedEnv scale("MRIS_BENCH_SCALE", "2.5");
    EXPECT_DOUBLE_EQ(bench_scale(), 2.5);
  }
}

}  // namespace
}  // namespace mris::util
