#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mris::util {
namespace {

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  std::vector<std::uint64_t> sa, sb;
  for (int i = 0; i < 256; ++i) {
    sa.push_back(a());
    sb.push_back(b());
  }
  std::sort(sa.begin(), sa.end());
  for (std::uint64_t v : sb) {
    EXPECT_FALSE(std::binary_search(sa.begin(), sa.end(), v));
  }
}

TEST(DistributionTest, Uniform01InRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(DistributionTest, Uniform01MeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(DistributionTest, UniformRespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = uniform(rng, -3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(DistributionTest, UniformIndexCoversSupportWithoutBias) {
  Xoshiro256 rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[uniform_index(rng, 10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(DistributionTest, UniformIntInclusiveBounds) {
  Xoshiro256 rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = uniform_int(rng, -2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(DistributionTest, NormalMomentsMatch) {
  Xoshiro256 rng(19);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = normal(rng);
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(DistributionTest, LognormalMedianIsExpMu) {
  Xoshiro256 rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(lognormal(rng, 2.0, 1.0));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], std::exp(2.0), 0.25);
}

TEST(DistributionTest, ExponentialMeanIsInverseRate) {
  Xoshiro256 rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += exponential(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(DistributionTest, ParetoLowerBounded) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(pareto(rng, 2.0, 1.5), 2.0);
  }
}

TEST(SplitMix64Test, KnownFirstOutputs) {
  // Reference values from the splitmix64 reference implementation with
  // seed 0: successive outputs must match exactly.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace mris::util
