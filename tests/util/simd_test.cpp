// Kernel-level identity tests for the SIMD dispatch layer: every AVX2
// kernel must be bit-identical to its scalar reference on adversarial
// inputs (ulp-spaced values, dust residues, padding lanes), and the
// dispatch API must be well-behaved on any build/CPU.  These run the two
// implementations side by side in-process; the end-to-end placements are
// covered by the differential fuzz suite in tests/sim/simd_fuzz_test.cpp.
#include "util/simd.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mris::util::simd {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Both kernel tables regardless of the active dispatch level; on a build
// or CPU without AVX2 the pair degenerates to (scalar, scalar) and the
// identity assertions hold trivially.
const Kernels& scalar_k() { return kernel_table(Level::kScalar); }
const Kernels& vector_k() {
  return kernel_table(avx2_available() ? Level::kAvx2 : Level::kScalar);
}

TEST(SimdDispatchTest, PaddedStrideRoundsUpToWholeLanes) {
  EXPECT_EQ(padded_stride(1), 4u);
  EXPECT_EQ(padded_stride(2), 4u);
  EXPECT_EQ(padded_stride(3), 4u);
  EXPECT_EQ(padded_stride(4), 4u);
  EXPECT_EQ(padded_stride(5), 8u);
  EXPECT_EQ(padded_stride(8), 8u);
  EXPECT_EQ(padded_stride(9), 12u);
}

TEST(SimdDispatchTest, SetLevelScalarAlwaysSucceeds) {
  const Level before = active_level();
  EXPECT_TRUE(set_level(Level::kScalar));
  EXPECT_EQ(active_level(), Level::kScalar);
  EXPECT_EQ(&active(), &kernel_table(Level::kScalar));
  set_level(before);
}

TEST(SimdDispatchTest, SetLevelAvx2MatchesAvailability) {
  const Level before = active_level();
  if (avx2_available()) {
    EXPECT_TRUE(set_level(Level::kAvx2));
    EXPECT_EQ(active_level(), Level::kAvx2);
  } else {
    EXPECT_FALSE(set_level(Level::kAvx2));
    EXPECT_EQ(active_level(), before);  // refused, level unchanged
  }
  set_level(before);
}

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
}

TEST(SimdDispatchTest, AvailabilityImpliesCompiled) {
  if (avx2_available()) {
    EXPECT_TRUE(avx2_compiled());
  }
}

// Adversarial row values: exact capacity, one-ulp neighbors around 1.0 and
// 0.0, dust-sized residues on both sides of the clamp threshold, and plain
// mid-range values — everything the timeline can hold.
std::vector<double> adversarial_values() {
  return {
      0.0,
      1.0,
      std::nextafter(1.0, 0.0),
      std::nextafter(1.0, 2.0),
      0.5,
      0.25 + 1e-17,
      1e-300,
      -0.5e-12,   // dust: clamped by sub when it lands here
      -2e-12,     // beyond dust: kept (contract violation territory)
      0.9999999999,
      1e-9,
      0.3333333333333333,
  };
}

TEST(SimdKernelTest, RowMaxIdentityOverAdversarialRows) {
  util::Xoshiro256 rng(0x51u);
  const auto vals = adversarial_values();
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = 1 + util::uniform_index(rng, 16);
    std::vector<double> row(n);
    for (double& x : row) x = vals[util::uniform_index(rng, vals.size())];
    const double s = scalar_k().row_max(row.data(), n);
    const double v = vector_k().row_max(row.data(), n);
    ASSERT_EQ(bits(s), bits(v)) << "n=" << n << " iter=" << iter;
  }
}

TEST(SimdKernelTest, MinHeadroomIdentityOverAdversarialRowBlocks) {
  util::Xoshiro256 rng(0x56u);
  const auto vals = adversarial_values();
  for (int iter = 0; iter < 300; ++iter) {
    // Strides cover the fast path (kLane) and the generic path; row counts
    // cover empty, sub-block, exact-block, and block+tail shapes.
    const std::size_t stride = (iter % 2 == 0) ? kLane : kLane * (1 + iter % 3);
    const std::size_t rows = util::uniform_index(rng, 11);
    std::vector<double> usage(rows * stride);
    for (double& x : usage) x = vals[util::uniform_index(rng, vals.size())];
    std::vector<double> hs(rows, -1.0), hv(rows, -1.0);
    scalar_k().min_headroom(usage.data(), rows, stride, hs.data());
    vector_k().min_headroom(usage.data(), rows, stride, hv.data());
    for (std::size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(bits(hs[i]), bits(hv[i]))
          << "row " << i << " stride=" << stride << " iter=" << iter;
    }
  }
}

TEST(SimdKernelTest, AddRowIdentityOverAdversarialRows) {
  util::Xoshiro256 rng(0x52u);
  const auto vals = adversarial_values();
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = 1 + util::uniform_index(rng, 16);
    std::vector<double> a(n), b(n), demand(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = b[i] = vals[util::uniform_index(rng, vals.size())];
      demand[i] = vals[util::uniform_index(rng, vals.size())];
    }
    scalar_k().add_row(a.data(), demand.data(), n);
    vector_k().add_row(b.data(), demand.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(a[i]), bits(b[i])) << "lane " << i << " iter=" << iter;
    }
  }
}

TEST(SimdKernelTest, SubClampRowIdentityIncludingDustAndSlack) {
  util::Xoshiro256 rng(0x53u);
  const auto vals = adversarial_values();
  for (int iter = 0; iter < 1000; ++iter) {
    const std::size_t n = 1 + util::uniform_index(rng, 16);
    std::vector<double> a(n), b(n), demand(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = b[i] = vals[util::uniform_index(rng, vals.size())];
      // Often release exactly what is there (the common cancel path: the
      // residue is exactly 0.0 or one-ulp dust), sometimes release more.
      demand[i] = util::uniform_index(rng, 2) == 0 ? a[i] : vals[util::uniform_index(rng, vals.size())];
    }
    const double slack = util::uniform_index(rng, 2) == 0 ? 1e-6 : 0.0;
    const bool ok_s = scalar_k().sub_clamp_row(a.data(), demand.data(), n,
                                               slack);
    const bool ok_v = vector_k().sub_clamp_row(b.data(), demand.data(), n,
                                               slack);
    ASSERT_EQ(ok_s, ok_v) << "iter=" << iter;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(a[i]), bits(b[i])) << "lane " << i << " iter=" << iter;
    }
  }
}

TEST(SimdKernelTest, SubClampProducesPositiveZeroForDust) {
  // The dust clamp must write +0.0 (not -0.0): row values feed the bitwise
  // coalescing comparison and the max reduction, both of which the
  // exactness contract requires to see identical bit patterns.
  std::vector<double> row = {0.3, 0.3, 0.3, 0.3};
  std::vector<double> demand = {0.3 + 0.4e-12, 0.3, 0.3, 0.3};
  ASSERT_TRUE(vector_k().sub_clamp_row(row.data(), demand.data(), 4, 1e-6));
  EXPECT_EQ(bits(row[0]), bits(0.0));  // +0.0, sign bit clear
}

TEST(SimdKernelTest, FirstConflictIdentityIncludingUlpBoundaries) {
  util::Xoshiro256 rng(0x54u);
  const auto vals = adversarial_values();
  for (int iter = 0; iter < 1000; ++iter) {
    const std::size_t n = util::uniform_index(rng, 24);
    std::vector<double> times(n), headroom(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Strictly increasing breakpoints with ulp-spaced gaps, so exact
      // `times[i] == end` boundaries (which MUST stop the scan) occur.
      t += vals[util::uniform_index(rng, vals.size())] + 1e-9;
      times[i] = t;
      headroom[i] = vals[util::uniform_index(rng, vals.size())];
    }
    // dmax/end drawn from the same pools, so exact ties (dmax == headroom,
    // which must NOT conflict; times == end, which must stop) are common.
    const double dmax = vals[util::uniform_index(rng, vals.size())];
    const double end = n == 0 ? 1.0 : times[util::uniform_index(rng, n)];
    const std::size_t s = scalar_k().first_conflict(times.data(),
                                                    headroom.data(), n, end,
                                                    dmax);
    const std::size_t v = vector_k().first_conflict(times.data(),
                                                    headroom.data(), n, end,
                                                    dmax);
    ASSERT_EQ(s, v) << "n=" << n << " dmax=" << dmax << " iter=" << iter;
  }
}

TEST(SimdKernelTest, DpRelaxIdentityIncludingSmallStrides) {
  util::Xoshiro256 rng(0x55u);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t cap = util::uniform_index(rng, 64);
    std::vector<double> a(cap + 1), b(cap + 1);
    for (std::size_t c = 0; c <= cap; ++c) {
      a[c] = b[c] = static_cast<double>(util::uniform_index(rng, 1000)) * 0.123;
    }
    // s < kLane exercises the overlapping read/write blocks, s == 0 the
    // self-relaxation the Ibarra-Kim floor scaling can produce.
    const std::size_t s = util::uniform_index(rng, 2) == 0 ? util::uniform_index(rng, kLane)
                                            : util::uniform_index(rng, cap + 1);
    const double p = static_cast<double>(1 + util::uniform_index(rng, 100)) * 0.017;
    scalar_k().dp_relax(a.data(), cap, s, p);
    vector_k().dp_relax(b.data(), cap, s, p);
    for (std::size_t c = 0; c <= cap; ++c) {
      ASSERT_EQ(bits(a[c]), bits(b[c]))
          << "cap=" << cap << " s=" << s << " c=" << c << " iter=" << iter;
    }
  }
}

TEST(SimdKernelTest, DpRelaxMatchesDefinitionAtSZero) {
  // s == 0: dp[c] = max(dp[c], dp[c] + p), i.e. every entry gains p when
  // p > 0.  The vector path must read pre-update values exactly like the
  // scalar loop does.
  std::vector<double> dp = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  vector_k().dp_relax(dp.data(), 5, 0, 0.5);
  for (std::size_t c = 0; c <= 5; ++c) {
    EXPECT_DOUBLE_EQ(dp[c], static_cast<double>(c + 1) + 0.5);
  }
}

}  // namespace
}  // namespace mris::util::simd
