#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mris::util {
namespace {

TEST(SummaryTest, EmptyInputIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, SingleValue) {
  const std::vector<double> xs = {42.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(SummaryTest, KnownSample) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(MeanCiTest, SingleSampleHasZeroWidth) {
  const std::vector<double> xs = {3.0};
  const MeanCi ci = mean_ci95(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(MeanCiTest, KnownTwoSampleInterval) {
  // n=2, mean 1.5, s = sqrt(0.5); t(1, .975) = 12.706.
  const std::vector<double> xs = {1.0, 2.0};
  const MeanCi ci = mean_ci95(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 1.5);
  EXPECT_NEAR(ci.half_width, 12.706 * std::sqrt(0.5) / std::sqrt(2.0), 1e-9);
  EXPECT_LT(ci.lo(), ci.mean);
  EXPECT_GT(ci.hi(), ci.mean);
}

TEST(MeanCiTest, ConstantSampleHasZeroWidth) {
  const std::vector<double> xs(10, 7.5);
  const MeanCi ci = mean_ci95(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 7.5);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(TCriticalTest, TableValuesAndAsymptote) {
  EXPECT_NEAR(t_critical95(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical95(9), 2.262, 1e-9);   // the paper's 10 reps
  EXPECT_NEAR(t_critical95(30), 2.042, 1e-9);
  EXPECT_NEAR(t_critical95(1000), 1.96, 1e-9);
}

TEST(QuantileTest, MedianAndExtremes) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(EmpiricalCdfTest, MonotoneAndEndsAtOne) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 2.0, 5.0, 0.5, 4.0};
  const auto cdf = empirical_cdf(xs, 100);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
}

TEST(EmpiricalCdfTest, DownsamplesToRequestedPoints) {
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const auto cdf = empirical_cdf(xs, 50);
  EXPECT_EQ(cdf.size(), 50u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 999.0);
}

TEST(HistogramTest, CountsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  // -1 clamps into bin 0; 2.0 clamps into bin 1.
  EXPECT_EQ(h[0], 2u);
  EXPECT_EQ(h[1], 3u);
}

TEST(HistogramTest, DegenerateRangeReturnsZeros) {
  const std::vector<double> xs = {1.0, 2.0};
  const auto h = histogram(xs, 5.0, 5.0, 4);
  for (auto c : h) EXPECT_EQ(c, 0u);
}

}  // namespace
}  // namespace mris::util
