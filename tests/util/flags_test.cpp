#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace mris::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, SpaceSeparatedValue) {
  const Flags f = parse({"--jobs", "500"});
  EXPECT_EQ(f.get_int("jobs", 0), 500);
}

TEST(FlagsTest, EqualsSeparatedValue) {
  const Flags f = parse({"--scheduler=pq-wsjf"});
  EXPECT_EQ(f.get("scheduler", ""), "pq-wsjf");
}

TEST(FlagsTest, BooleanFlagWithoutValue) {
  const Flags f = parse({"--gantt", "--jobs", "5"});
  EXPECT_TRUE(f.get_bool("gantt"));
  EXPECT_EQ(f.get_int("jobs", 0), 5);
}

TEST(FlagsTest, TrailingBooleanFlag) {
  const Flags f = parse({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_EQ(f.get_int("n", -7), -7);
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("b", true));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = parse({"simulate", "--jobs", "5", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "simulate");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, TypeErrorsThrow) {
  const Flags f = parse({"--n", "abc", "--b", "maybe"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("n", 0.0), std::invalid_argument);
  EXPECT_THROW(f.get_bool("b"), std::invalid_argument);
}

TEST(FlagsTest, OutOfRangeValuesThrow) {
  const Flags f =
      parse({"--n", "99999999999999999999999", "--x", "1e999"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);  // > int64 max
  EXPECT_THROW(f.get_double("x", 0.0), std::invalid_argument);
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(parse({"--a", "1"}).get_bool("a"));
  EXPECT_TRUE(parse({"--a", "yes"}).get_bool("a"));
  EXPECT_FALSE(parse({"--a", "0"}).get_bool("a"));
  EXPECT_FALSE(parse({"--a", "no"}).get_bool("a"));
}

TEST(FlagsTest, UnconsumedDetectsTypos) {
  const Flags f = parse({"--jobs", "5", "--typo", "x"});
  EXPECT_EQ(f.get_int("jobs", 0), 5);
  const auto leftover = f.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "typo");
}

TEST(FlagsTest, HasMarksConsumed) {
  const Flags f = parse({"--present", "v"});
  EXPECT_TRUE(f.has("present"));
  EXPECT_FALSE(f.has("absent"));
  EXPECT_TRUE(f.unconsumed().empty());
}

TEST(FlagsTest, NegativeNumbersAsValues) {
  // A negative number is not a flag (doesn't start with --).
  const Flags f = parse({"--offset", "-3"});
  EXPECT_EQ(f.get_int("offset", 0), -3);
}

TEST(FlagsTest, EmptyFlagNameThrows) {
  EXPECT_THROW(parse({"--=x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

}  // namespace
}  // namespace mris::util
