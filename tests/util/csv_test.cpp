#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mris::util {
namespace {

TEST(CsvParseTest, SimpleFields) {
  const auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvParseTest, EmptyFieldsPreserved) {
  const auto f = parse_csv_line("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(CsvParseTest, QuotedCommaAndEscapedQuote) {
  const auto f = parse_csv_line(R"("x,y",plain,"he said ""hi""")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "x,y");
  EXPECT_EQ(f[1], "plain");
  EXPECT_EQ(f[2], "he said \"hi\"");
}

TEST(CsvParseTest, ToleratesCarriageReturn) {
  const auto f = parse_csv_line("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(CsvRoundTripTest, EscapeThenParse) {
  const std::vector<std::string> fields = {"a,b", "c\"d", "", "plain"};
  const auto parsed = parse_csv_line(join_csv(fields));
  EXPECT_EQ(parsed, fields);
}

TEST(CsvReadTest, HeaderAndRows) {
  std::istringstream in("x,y\n1,2\n3,4\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.column("y"), 1);
  EXPECT_EQ(t.column("missing"), -1);
  EXPECT_EQ(t.rows[1][0], "3");
}

TEST(CsvReadTest, SkipsBlankLines) {
  std::istringstream in("h\n\na\n\r\nb\n");
  const CsvTable t = read_csv(in);
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(CsvReadTest, NoHeaderMode) {
  std::istringstream in("1,2\n3,4\n");
  const CsvTable t = read_csv(in, /*has_header=*/false);
  EXPECT_TRUE(t.header.empty());
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST(CsvWriteTest, RoundTripsThroughRead) {
  CsvTable t;
  t.header = {"name", "value"};
  t.rows = {{"alpha", "1"}, {"with,comma", "2"}};
  std::ostringstream out;
  write_csv(out, t);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in);
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
}

TEST(CsvReadFileTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely_missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace mris::util
