#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace mris::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(2);
  std::vector<double> out(512);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 2.0 * 511.0 * 512.0 / 2.0);
}

TEST(ThreadPoolTest, SizeReflectsRequestedWorkers) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSingleItem) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPoolTest, ParallelForRethrowsWhenEveryIterationThrows) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t) {
                                   throw std::runtime_error("all fail");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForFromInsidePoolViolatesContract) {
  // Blocking on the pool from one of its own workers can deadlock (always
  // does for a 1-worker pool); the contract rejects it up front.
  ThreadPool pool(1);
  auto fut = pool.submit([&pool] {
    EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}),
                 ContractViolation);
  });
  fut.get();
}

TEST(ThreadPoolTest, ParallelForFromWorkerOfAnotherPoolIsFine) {
  ThreadPool outer(1);
  ThreadPool inner(2);
  auto fut = outer.submit([&inner] {
    std::atomic<int> n{0};
    inner.parallel_for(16, [&](std::size_t) { ++n; });
    return n.load();
  });
  EXPECT_EQ(fut.get(), 16);
}

TEST(ThreadPoolTest, ConcurrentSubmittersStress) {
  // Many external threads hammering submit() — the TSan target for the
  // queue/cv handshake.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(8);
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(100);
      for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(counter.load(), 800);
}

TEST(ThreadPoolTest, ConcurrentParallelForStress) {
  // Several threads running parallel_for on the same pool at once; every
  // index of every call must run exactly once.
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kItems = 500;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    v = std::vector<std::atomic<int>>(kItems);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.parallel_for(kItems, [&hits, c](std::size_t i) { ++hits[c][i]; });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& v : hits) {
    for (const auto& h : v) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolConcurrentFirstUse) {
  // Concurrent first-touch of the magic static: every thread must see the
  // same fully-constructed pool (TSan verifies the guard handshake).
  constexpr int kThreads = 8;
  std::vector<ThreadPool*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      ThreadPool& pool = global_pool();
      auto fut = pool.submit([] { return 1; });
      EXPECT_EQ(fut.get(), 1);
      seen[static_cast<std::size_t>(t)] = &pool;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
}

}  // namespace
}  // namespace mris::util
