#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mris::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(2);
  std::vector<double> out(512);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 2.0 * 511.0 * 512.0 / 2.0);
}

TEST(ThreadPoolTest, SizeReflectsRequestedWorkers) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace mris::util
