#include "core/schedule_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mris {
namespace {

Instance small_instance() {
  return InstanceBuilder(2, 1)
      .add(0.0, 2.0, 1.0, {0.5})
      .add(1.0, 3.0, 1.0, {0.5})
      .add(0.0, 1.0, 1.0, {0.5})
      .build();
}

TEST(ScheduleIoTest, RoundTripCompleteSchedule) {
  const Instance inst = small_instance();
  Schedule s(3);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 1.5);
  s.assign(2, 0, 2.0);

  std::stringstream buffer;
  write_schedule_csv(buffer, inst, s);
  const Schedule loaded = read_schedule_csv(buffer, inst);
  for (JobId j = 0; j < 3; ++j) {
    EXPECT_EQ(loaded.assignment(j).machine, s.assignment(j).machine);
    EXPECT_EQ(loaded.start_time(j), s.start_time(j));
  }
}

TEST(ScheduleIoTest, PartialScheduleKeepsUnassignedRows) {
  const Instance inst = small_instance();
  Schedule s(3);
  s.assign(1, 0, 4.0);

  std::stringstream buffer;
  write_schedule_csv(buffer, inst, s);
  const Schedule loaded = read_schedule_csv(buffer, inst);
  EXPECT_FALSE(loaded.is_assigned(0));
  EXPECT_TRUE(loaded.is_assigned(1));
  EXPECT_FALSE(loaded.is_assigned(2));
}

TEST(ScheduleIoTest, HeaderIsStable) {
  const Instance inst = small_instance();
  std::stringstream buffer;
  write_schedule_csv(buffer, inst, Schedule(3));
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "job,machine,start,completion");
}

TEST(ScheduleIoTest, RejectsWrongHeader) {
  std::istringstream in("a,b\n");
  EXPECT_THROW(read_schedule_csv(in, small_instance()), std::runtime_error);
}

TEST(ScheduleIoTest, RejectsOutOfRangeJob) {
  std::istringstream in(
      "job,machine,start,completion\n"
      "9,0,0,2\n");
  EXPECT_THROW(read_schedule_csv(in, small_instance()), std::runtime_error);
}

TEST(ScheduleIoTest, RejectsInconsistentCompletion) {
  // Job 0 has p = 2, so completion must be start + 2.
  std::istringstream in(
      "job,machine,start,completion\n"
      "0,0,1,9\n");
  EXPECT_THROW(read_schedule_csv(in, small_instance()), std::runtime_error);
}

TEST(ScheduleIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mris_sched_io.csv";
  const Instance inst = small_instance();
  Schedule s(3);
  s.assign(0, 1, 0.25);
  s.assign(1, 0, 1.0);
  s.assign(2, 1, 2.25);
  write_schedule_csv_file(path, inst, s);
  const Schedule loaded = read_schedule_csv_file(path, inst);
  EXPECT_EQ(loaded.start_time(0), 0.25);
  EXPECT_EQ(loaded.assignment(2).machine, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mris
