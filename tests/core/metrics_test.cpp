#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace mris {
namespace {

struct Fixture {
  Instance inst = InstanceBuilder(2, 1)
                      .add(0.0, 2.0, 1.0, {0.5})   // C = 3 when started at 1
                      .add(1.0, 4.0, 3.0, {0.5})   // C = 6 when started at 2
                      .build();
  Schedule sched{2};
  Fixture() {
    sched.assign(0, 0, 1.0);
    sched.assign(1, 1, 2.0);
  }
};

TEST(MetricsTest, TotalWeightedCompletionTime) {
  Fixture f;
  // 1*3 + 3*6 = 21.
  EXPECT_DOUBLE_EQ(total_weighted_completion_time(f.inst, f.sched), 21.0);
}

TEST(MetricsTest, AverageWeightedCompletionTime) {
  Fixture f;
  EXPECT_DOUBLE_EQ(average_weighted_completion_time(f.inst, f.sched), 10.5);
}

TEST(MetricsTest, Makespan) {
  Fixture f;
  EXPECT_DOUBLE_EQ(makespan(f.inst, f.sched), 6.0);
}

TEST(MetricsTest, QueuingDelays) {
  Fixture f;
  const auto delays = queuing_delays(f.inst, f.sched);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 1.0);
  EXPECT_DOUBLE_EQ(delays[1], 1.0);
  EXPECT_DOUBLE_EQ(mean_queuing_delay(f.inst, f.sched), 1.0);
}

TEST(MetricsTest, WeightedFlowTime) {
  Fixture f;
  // Flow F_j = C_j - r_j: job0 3-0=3 (w=1), job1 6-1=5 (w=3) -> 3+15=18.
  EXPECT_DOUBLE_EQ(total_weighted_flow_time(f.inst, f.sched), 18.0);
  EXPECT_DOUBLE_EQ(average_weighted_flow_time(f.inst, f.sched), 9.0);
}

TEST(MetricsTest, FlowTimeEqualsCompletionTimeForZeroReleases) {
  const Instance inst = InstanceBuilder(1, 1)
                            .add(0.0, 2.0, 2.0, {0.5})
                            .add(0.0, 3.0, 1.0, {0.5})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 0.0);
  EXPECT_DOUBLE_EQ(total_weighted_flow_time(inst, s),
                   total_weighted_completion_time(inst, s));
}

TEST(MetricsTest, EmptyInstanceEdgeCases) {
  const Instance inst = InstanceBuilder(1, 1).build();
  const Schedule sched(0);
  EXPECT_DOUBLE_EQ(average_weighted_completion_time(inst, sched), 0.0);
  EXPECT_DOUBLE_EQ(average_weighted_flow_time(inst, sched), 0.0);
  EXPECT_DOUBLE_EQ(makespan(inst, sched), 0.0);
  EXPECT_DOUBLE_EQ(mean_queuing_delay(inst, sched), 0.0);
}

TEST(MetricsTest, AverageUtilizationMatchesHandComputation) {
  // One machine, one resource: job of demand 0.5 for 2 units, makespan 4.
  const Instance inst = InstanceBuilder(1, 1)
                            .add(0.0, 2.0, 1.0, {0.5})
                            .add(0.0, 4.0, 1.0, {0.25})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 0.0);
  const auto util = average_utilization(inst, s);
  ASSERT_EQ(util.size(), 1u);
  // (2*0.5 + 4*0.25) / (1 * 4) = 0.5.
  EXPECT_DOUBLE_EQ(util[0], 0.5);
}

TEST(MetricsTest, UsageOverTimeTracksStartsAndEnds) {
  const Instance inst = InstanceBuilder(2, 1)
                            .add(0.0, 2.0, 1.0, {0.5})
                            .add(0.0, 4.0, 1.0, {0.25})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 1.0);
  s.assign(1, 0, 2.0);
  const auto samples = usage_over_time(inst, s, /*machine=*/0, /*resource=*/0);
  // Job 0 occupies [1, 3) at 0.5; job 1 occupies [2, 6) at 0.25.
  // Breakpoints: 1 (0.5), 2 (0.75), 3 (0.25), 6 (0).
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples[0].t, 1.0);
  EXPECT_DOUBLE_EQ(samples[0].usage, 0.5);
  EXPECT_DOUBLE_EQ(samples[1].t, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].usage, 0.75);
  EXPECT_DOUBLE_EQ(samples[2].t, 3.0);
  EXPECT_DOUBLE_EQ(samples[2].usage, 0.25);
  EXPECT_DOUBLE_EQ(samples.back().t, 6.0);
  EXPECT_DOUBLE_EQ(samples.back().usage, 0.0);
}

TEST(MetricsTest, UsageOverTimeFiltersMachine) {
  const Instance inst = InstanceBuilder(2, 1)
                            .add(0.0, 2.0, 1.0, {0.5})
                            .build();
  Schedule s(1);
  s.assign(0, 1, 0.0);
  EXPECT_TRUE(usage_over_time(inst, s, 0, 0).empty());
  EXPECT_FALSE(usage_over_time(inst, s, 1, 0).empty());
}

}  // namespace
}  // namespace mris
