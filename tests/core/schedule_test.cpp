#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace mris {
namespace {

Instance two_job_instance() {
  return InstanceBuilder(2, 2)
      .add(0.0, 2.0, 1.0, {0.6, 0.2})
      .add(1.0, 3.0, 2.0, {0.5, 0.5})
      .build();
}

TEST(ScheduleTest, AssignAndQuery) {
  Schedule s(2);
  EXPECT_FALSE(s.complete());
  s.assign(0, 1, 5.0);
  EXPECT_TRUE(s.is_assigned(0));
  EXPECT_FALSE(s.is_assigned(1));
  EXPECT_EQ(s.assignment(0).machine, 1);
  EXPECT_DOUBLE_EQ(s.start_time(0), 5.0);
}

TEST(ScheduleTest, DoubleAssignThrows) {
  Schedule s(1);
  s.assign(0, 0, 0.0);
  EXPECT_THROW(s.assign(0, 0, 1.0), std::logic_error);
}

TEST(ScheduleTest, UnassignedStartTimeThrows) {
  Schedule s(1);
  EXPECT_THROW(s.start_time(0), std::logic_error);
}

TEST(ScheduleTest, CompletionTimeAddsProcessing) {
  const Instance inst = two_job_instance();
  Schedule s(2);
  s.assign(0, 0, 1.0);
  EXPECT_DOUBLE_EQ(s.completion_time(inst, 0), 3.0);
}

TEST(ValidateTest, AcceptsFeasibleConcurrentSchedule) {
  const Instance inst = two_job_instance();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 1.0);  // usage peaks at {1.1 > 1? no: 0.6+0.5=1.1} -> fails
  const ValidationResult v = validate_schedule(inst, s);
  EXPECT_FALSE(v.ok);  // resource 0 over capacity during [1, 2)
}

TEST(ValidateTest, AcceptsSeparateMachines) {
  const Instance inst = two_job_instance();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 1.0);
  EXPECT_TRUE(validate_schedule(inst, s).ok);
}

TEST(ValidateTest, BackToBackOnSameMachineIsFeasible) {
  // Job 1 starts exactly when job 0 completes: [S, C) semantics mean no
  // overlap at the boundary instant.
  const Instance inst = InstanceBuilder(1, 1)
                            .add(0.0, 2.0, 1.0, {1.0})
                            .add(0.0, 2.0, 1.0, {1.0})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 2.0);
  EXPECT_TRUE(validate_schedule(inst, s).ok);
}

TEST(ValidateTest, RejectsUnassignedJob) {
  const Instance inst = two_job_instance();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  const ValidationResult v = validate_schedule(inst, s);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("unassigned"), std::string::npos);
}

TEST(ValidateTest, RejectsStartBeforeRelease) {
  const Instance inst = two_job_instance();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 0.5);  // release is 1.0
  EXPECT_FALSE(validate_schedule(inst, s).ok);
}

TEST(ValidateTest, RejectsMachineOutOfRange) {
  const Instance inst = two_job_instance();
  Schedule s(2);
  s.assign(0, 5, 0.0);
  s.assign(1, 0, 1.0);
  EXPECT_FALSE(validate_schedule(inst, s).ok);
}

TEST(ValidateTest, RejectsCapacityViolationInOneResourceOnly) {
  const Instance inst = InstanceBuilder(1, 2)
                            .add(0.0, 4.0, 1.0, {0.3, 0.9})
                            .add(0.0, 4.0, 1.0, {0.3, 0.2})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 0.0);  // resource 0 fine (0.6), resource 1 over (1.1)
  const ValidationResult v = validate_schedule(inst, s);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("resource 1"), std::string::npos);
}

TEST(ValidateTest, RejectsJobCountMismatch) {
  const Instance inst = two_job_instance();
  Schedule s(1);
  EXPECT_FALSE(validate_schedule(inst, s).ok);
}

TEST(ValidateTest, ManyConcurrentSmallJobsExactlyFillCapacity) {
  InstanceBuilder b(1, 1);
  for (int i = 0; i < 10; ++i) b.add(0.0, 1.0, 1.0, {0.1});
  const Instance inst = b.build();
  Schedule s(10);
  for (JobId j = 0; j < 10; ++j) s.assign(j, 0, 0.0);
  EXPECT_TRUE(validate_schedule(inst, s).ok);
}

TEST(ValidateTest, EmptyScheduleOfEmptyInstanceIsValid) {
  const Instance inst = InstanceBuilder(1, 1).build();
  EXPECT_TRUE(validate_schedule(inst, Schedule(0)).ok);
}

}  // namespace
}  // namespace mris
