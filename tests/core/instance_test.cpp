#include "core/instance.hpp"

#include <gtest/gtest.h>

namespace mris {
namespace {

TEST(JobTest, TotalDemandAndVolume) {
  Job j;
  j.processing = 4.0;
  j.demand = {0.25, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(j.total_demand(), 0.75);
  EXPECT_DOUBLE_EQ(j.volume(), 3.0);
}

TEST(JobTest, TotalVolumeOverRange) {
  std::vector<Job> jobs(2);
  jobs[0].processing = 2.0;
  jobs[0].demand = {0.5};
  jobs[1].processing = 3.0;
  jobs[1].demand = {1.0};
  EXPECT_DOUBLE_EQ(total_volume(jobs), 1.0 + 3.0);
}

TEST(InstanceBuilderTest, BuildsValidInstance) {
  const Instance inst = InstanceBuilder(2, 3)
                            .add(0.0, 1.0, 1.0, {0.1, 0.2, 0.3})
                            .add_uniform(1.0, 2.0, 2.0, 0.5)
                            .build();
  EXPECT_EQ(inst.num_jobs(), 2u);
  EXPECT_EQ(inst.num_machines(), 2);
  EXPECT_EQ(inst.num_resources(), 3);
  EXPECT_DOUBLE_EQ(inst.job(1).demand[2], 0.5);
  EXPECT_EQ(inst.job(0).id, 0);
  EXPECT_EQ(inst.job(1).id, 1);
}

TEST(InstanceTest, RejectsWrongDemandDimension) {
  std::vector<Job> jobs(1);
  jobs[0].id = 0;
  jobs[0].demand = {0.5};  // 1 entry but R = 2
  EXPECT_THROW(Instance(std::move(jobs), 1, 2), std::invalid_argument);
}

TEST(InstanceTest, RejectsDemandAboveCapacity) {
  EXPECT_THROW(InstanceBuilder(1, 1).add(0, 1, 1, {1.5}).build(),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsNegativeDemand) {
  EXPECT_THROW(InstanceBuilder(1, 2).add(0, 1, 1, {0.5, -0.1}).build(),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsNonPositiveProcessing) {
  EXPECT_THROW(InstanceBuilder(1, 1).add(0, 0.0, 1, {0.5}).build(),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsNonPositiveWeight) {
  EXPECT_THROW(InstanceBuilder(1, 1).add(0, 1, 0.0, {0.5}).build(),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsNegativeRelease) {
  EXPECT_THROW(InstanceBuilder(1, 1).add(-1.0, 1, 1, {0.5}).build(),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsAllZeroDemand) {
  EXPECT_THROW(InstanceBuilder(1, 2).add(0, 1, 1, {0.0, 0.0}).build(),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsBadMachineOrResourceCount) {
  std::vector<Job> none;
  EXPECT_THROW(Instance(none, 0, 1), std::invalid_argument);
  EXPECT_THROW(Instance(none, 1, 0), std::invalid_argument);
}

TEST(InstanceTest, AggregateQueries) {
  const Instance inst = InstanceBuilder(2, 2)
                            .add(0.0, 2.0, 1.0, {0.5, 0.5})
                            .add(3.0, 5.0, 1.0, {1.0, 0.0})
                            .build();
  EXPECT_DOUBLE_EQ(inst.total_volume(), 2.0 * 1.0 + 5.0 * 1.0);
  EXPECT_DOUBLE_EQ(inst.max_processing(), 5.0);
  EXPECT_DOUBLE_EQ(inst.last_release(), 3.0);
}

TEST(InstanceTest, NormalizedScalesToUnitMinProcessing) {
  const Instance inst = InstanceBuilder(1, 1)
                            .add(4.0, 2.0, 1.0, {0.5})
                            .add(0.0, 8.0, 1.0, {0.5})
                            .build();
  const Instance norm = inst.normalized();
  EXPECT_DOUBLE_EQ(norm.job(0).processing, 1.0);
  EXPECT_DOUBLE_EQ(norm.job(1).processing, 4.0);
  // Releases scale by the same factor to preserve geometry.
  EXPECT_DOUBLE_EQ(norm.job(0).release, 2.0);
}

TEST(InstanceTest, NormalizedIsIdempotentWhenAlreadyNormalized) {
  const Instance inst =
      InstanceBuilder(1, 1).add(0.0, 1.0, 1.0, {0.5}).build();
  const Instance norm = inst.normalized();
  EXPECT_DOUBLE_EQ(norm.job(0).processing, 1.0);
}

TEST(InstanceTest, EmptyInstanceIsValid) {
  const Instance inst = InstanceBuilder(3, 2).build();
  EXPECT_EQ(inst.num_jobs(), 0u);
  EXPECT_DOUBLE_EQ(inst.total_volume(), 0.0);
  EXPECT_DOUBLE_EQ(inst.max_processing(), 0.0);
  EXPECT_TRUE(inst.check_invariants().empty());
}

}  // namespace
}  // namespace mris
