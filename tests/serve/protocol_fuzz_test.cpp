// Seeded byte-level fuzz of the daemon admission protocol
// (serve/protocol.hpp): encode a generated instance to wire bytes, apply a
// seeded mutation (bit flip, truncation, frame duplication, frame swap,
// garbage injection), and feed the result to the decoder.  The contract
// under attack: a mutated stream either still decodes to the exact
// original job sequence (the mutation missed every validated byte — rare,
// CRC-guarded) or raises ProtocolError; it never crashes, never loops, and
// never yields a silently different job.
//
// The property is registered as an oracle ("serve-protocol-robust") on a
// test-local catalog and driven through check_and_minimize, so any failure
// is ddmin-shrunk and archived as a ready-to-commit .corpus artifact — the
// same failure pipeline every other testkit suite funnels through
// (docs/TESTING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "testkit/generators.hpp"
#include "testkit/oracles.hpp"
#include "testkit/streams.hpp"
#include "util/rng.hpp"

namespace mris::serve {
namespace {

using testkit::Family;
using testkit::GenConfig;
using testkit::make_family_instance;
using testkit::make_stream;

/// Jobs of `inst` in the daemon's admission order (release, ties by id).
std::vector<Job> admission_order(const Instance& inst) {
  std::vector<Job> jobs = inst.jobs();
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  return jobs;
}

enum class Mutation {
  kBitFlip,
  kTruncate,
  kDuplicateFrame,
  kSwapFrames,
  kInsertGarbage,
};

/// Byte offsets where each frame starts (walking the valid encoding).
std::vector<std::size_t> frame_offsets(const std::string& bytes) {
  std::vector<std::size_t> offsets;
  std::size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    offsets.push_back(pos);
    const auto* u = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    const std::uint32_t size = static_cast<std::uint32_t>(u[0]) |
                               (static_cast<std::uint32_t>(u[1]) << 8) |
                               (static_cast<std::uint32_t>(u[2]) << 16) |
                               (static_cast<std::uint32_t>(u[3]) << 24);
    pos += 4u + size + 4u;
  }
  return offsets;
}

std::string mutate(const std::string& bytes, Mutation kind,
                   util::Xoshiro256& rng) {
  std::string out = bytes;
  const std::vector<std::size_t> frames = frame_offsets(bytes);
  switch (kind) {
    case Mutation::kBitFlip: {
      if (out.empty()) break;
      const std::size_t i = util::uniform_index(rng, out.size());
      out[i] = static_cast<char>(
          out[i] ^ static_cast<char>(1u << util::uniform_index(rng, 8)));
      break;
    }
    case Mutation::kTruncate: {
      if (out.empty()) break;
      out.resize(util::uniform_index(rng, out.size()));
      break;
    }
    case Mutation::kDuplicateFrame: {
      if (frames.size() < 2) break;
      const std::size_t f = util::uniform_index(rng, frames.size() - 1);
      const std::size_t begin = frames[f];
      const std::size_t end =
          f + 1 < frames.size() ? frames[f + 1] : bytes.size();
      out.insert(end, bytes.substr(begin, end - begin));
      break;
    }
    case Mutation::kSwapFrames: {
      if (frames.size() < 3) break;
      const std::size_t f = util::uniform_index(rng, frames.size() - 2);
      const std::size_t a0 = frames[f];
      const std::size_t a1 = frames[f + 1];
      const std::size_t b1 =
          f + 2 < frames.size() ? frames[f + 2] : bytes.size();
      out = bytes.substr(0, a0) + bytes.substr(a1, b1 - a1) +
            bytes.substr(a0, a1 - a0) + bytes.substr(b1);
      break;
    }
    case Mutation::kInsertGarbage: {
      const std::size_t at = util::uniform_index(rng, out.size() + 1);
      std::string garbage(1 + util::uniform_index(rng, 16), '\0');
      for (char& c : garbage) {
        c = static_cast<char>(util::uniform_index(rng, 256));
      }
      out.insert(at, garbage);
      break;
    }
  }
  return out;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The fuzz property as a testkit oracle.  Params: `fuzz_seed` seeds the
/// mutation stream, `mutation` picks the kind (0..4).
testkit::OracleResult protocol_robust(const Instance& inst,
                                      const exp::SchedulerSpec&,
                                      const testkit::Params& params) {
  const auto seed =
      static_cast<std::uint64_t>(testkit::param_int(params, "fuzz_seed", 1));
  const auto kind = static_cast<Mutation>(
      testkit::param_int(params, "mutation", 0) % 5);
  const std::vector<Job> jobs = admission_order(inst);
  const auto resources = static_cast<std::uint32_t>(inst.num_resources());
  const std::string bytes = encode_stream(jobs, resources);
  util::Xoshiro256 rng = make_stream(seed, "serve-protocol-fuzz");
  const std::string mutated = mutate(bytes, kind, rng);

  std::vector<Job> decoded;
  try {
    FrameDecoder decoder(resources);
    decoder.feed(mutated);
    Frame frame;
    while (decoder.next(frame)) {
      if (frame.kind == kFrameJob) decoded.push_back(frame.job.job);
    }
    decoder.finish();
  } catch (const ProtocolError&) {
    return {};  // explicit rejection is the expected outcome
  } catch (const std::exception& e) {
    return testkit::OracleResult{
        false, std::string("non-protocol exception escaped: ") + e.what()};
  }

  // The mutation survived decoding: it must have been byte-preserving on
  // everything validated — the decoded jobs must equal the originals.
  if (decoded.size() != jobs.size()) {
    return testkit::OracleResult{
        false, "mutated stream decoded to " + std::to_string(decoded.size()) +
                   " jobs instead of " + std::to_string(jobs.size())};
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!same_bits(decoded[i].release, jobs[i].release) ||
        !same_bits(decoded[i].processing, jobs[i].processing) ||
        !same_bits(decoded[i].weight, jobs[i].weight) ||
        decoded[i].tenant != jobs[i].tenant ||
        decoded[i].demand != jobs[i].demand) {
      return testkit::OracleResult{
          false, "mutated stream silently changed job " + std::to_string(i)};
    }
  }
  return {};
}

testkit::OracleCatalog fuzz_catalog() {
  testkit::OracleCatalog catalog;  // test-local; no standard oracles needed
  catalog.add("serve-protocol-robust", protocol_robust);
  return catalog;
}

TEST(ProtocolFuzzTest, MutatedStreamsAreRejectedOrByteIdentical) {
  const testkit::OracleCatalog catalog = fuzz_catalog();
  const std::size_t iters = testkit::fuzz_iters(6);
  for (Family family :
       {Family::kMixed, Family::kReleaseBurst, Family::kUlpBoundary}) {
    for (std::uint64_t seed = 0; seed < iters; ++seed) {
      GenConfig config;
      config.num_jobs = 16;
      const Instance inst = make_family_instance(family, config, seed);
      for (int mutation = 0; mutation < 5; ++mutation) {
        testkit::Params params;
        params["fuzz_seed"] = std::to_string(seed * 5 + mutation);
        params["mutation"] = std::to_string(mutation);
        // Through the shrinking harness: any violation is ddmin-minimized
        // and archived as a .corpus artifact before the assertion fires.
        const testkit::CheckReport report = testkit::check_and_minimize(
            catalog, "serve-protocol-robust", inst, "mris", params);
        EXPECT_TRUE(report.ok)
            << testkit::family_name(family) << " seed " << seed
            << " mutation " << mutation << ": " << report.message
            << (report.corpus_path.empty()
                    ? ""
                    : " (minimized corpus: " + report.corpus_path + ")");
      }
    }
  }
}

/// Proves the failure pipeline end to end for the serve suite: a
/// deliberately broken protocol oracle must come back minimized, with a
/// replayable .corpus artifact on disk.
TEST(ProtocolFuzzTest, FailuresAreShrunkAndArchived) {
  testkit::OracleCatalog catalog = fuzz_catalog();
  catalog.add("serve-fixture-nonempty",
              [](const Instance& inst, const exp::SchedulerSpec&,
                 const testkit::Params&) -> testkit::OracleResult {
                if (inst.num_jobs() >= 1) {
                  return testkit::OracleResult{
                      false, "deliberately broken fixture: any nonempty "
                             "stream fails"};
                }
                return {};
              });
  GenConfig config;
  config.num_jobs = 12;
  const Instance inst = make_family_instance(Family::kMixed, config, 3);
  const testkit::CheckReport report = testkit::check_and_minimize(
      catalog, "serve-fixture-nonempty", inst, "mris");
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.corpus_path.empty());
  EXPECT_TRUE(std::filesystem::exists(report.corpus_path));
  EXPECT_NE(report.corpus_path.find(".corpus"), std::string::npos);
}

}  // namespace
}  // namespace mris::serve
