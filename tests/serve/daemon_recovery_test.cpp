// Daemon restartability (serve/daemon.hpp + docs/DAEMON.md): a daemon that
// dies mid-stream — engine snapshot, engine journal, and admission journal
// all at an arbitrary cut — must, when restarted with resume and the
// producer's replayed stream, finish with byte-identical sink output and
// placement checksum to a daemon that never died.  The in-process "death"
// here is a stream cut at every prefix length (the daemon unwinds with a
// ProtocolError, leaving the state directory exactly as a crash between
// frames would); the hard kill -9 variant runs as the ctest shell script
// daemon_crash_kill (scripts/daemon_crash_test.sh), which cuts the process
// mid-write with no unwinding at all.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exp/schedulers.hpp"
#include "serve/admission_journal.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "testkit/generators.hpp"
#include "testkit/streams.hpp"

namespace mris::serve {
namespace {

using testkit::Family;
using testkit::GenConfig;
using testkit::make_family_instance;

Instance canonical(const Instance& inst) {
  std::vector<Job> jobs = inst.jobs();
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  return Instance(std::move(jobs), inst.num_machines(), inst.num_resources());
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("mris_serve_test_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ServeOptions base_options(const Instance& inst, const std::string& scheduler,
                          MetricsSink* sink) {
  ServeOptions opts;
  opts.num_machines = inst.num_machines();
  opts.num_resources = inst.num_resources();
  opts.sink = sink;
  opts.snapshot_every = 8;  // frequent cuts so crashes land past a snapshot
  opts.make_scheduler = [&inst, scheduler] {
    return exp::make_scheduler(exp::parse_scheduler_spec(scheduler), inst);
  };
  return opts;
}

struct DaemonOutput {
  std::uint64_t checksum = 0;
  std::string sink;
  ServeResult result;
};

DaemonOutput run_to_completion(const Instance& inst, const std::string& bytes,
                               const std::string& state_dir, bool resume) {
  std::ostringstream sink_out;
  JsonlSink sink(sink_out);
  ServeOptions opts = base_options(inst, "mris", &sink);
  opts.state_dir = state_dir;
  opts.resume = resume;
  std::istringstream in(bytes);
  DaemonOutput out;
  out.result = serve_stream(in, opts);
  out.checksum = out.result.placement_checksum;
  out.sink = sink_out.str();
  return out;
}

TEST(DaemonRecoveryTest, ResumedDaemonIsByteIdenticalAtEveryCut) {
  const std::size_t iters = testkit::fuzz_iters(2);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    GenConfig config;
    config.num_jobs = 18;
    const Instance inst =
        canonical(make_family_instance(Family::kMixed, config, seed));
    const std::string bytes = encode_stream(
        inst.jobs(), static_cast<std::uint32_t>(inst.num_resources()));

    const auto ref_dir = fresh_dir("ref_" + std::to_string(seed));
    const DaemonOutput reference =
        run_to_completion(inst, bytes, ref_dir.string(), false);

    // Crash at a sweep of byte cuts: before Hello, mid-frame, between
    // frames, just before End.
    for (std::size_t cut = 0; cut < bytes.size();
         cut += std::max<std::size_t>(1, bytes.size() / 7)) {
      const auto dir = fresh_dir("crash_" + std::to_string(seed) + "_" +
                                 std::to_string(cut));
      {
        ServeOptions opts = base_options(inst, "mris", nullptr);
        opts.state_dir = dir.string();
        std::istringstream in(bytes.substr(0, cut));
        EXPECT_THROW(serve_stream(in, opts), ProtocolError)
            << "cut " << cut << " unexpectedly decoded as a whole stream";
      }
      const DaemonOutput resumed =
          run_to_completion(inst, bytes, dir.string(), true);
      EXPECT_EQ(resumed.checksum, reference.checksum)
          << "seed " << seed << " cut " << cut;
      EXPECT_EQ(resumed.sink, reference.sink)
          << "seed " << seed << " cut " << cut;
      EXPECT_EQ(resumed.result.jobs, inst.num_jobs())
          << "seed " << seed << " cut " << cut;
      std::filesystem::remove_all(dir);
    }
    std::filesystem::remove_all(ref_dir);
  }
}

TEST(DaemonRecoveryTest, ResumeDedupesReplayedFrames) {
  GenConfig config;
  config.num_jobs = 16;
  const Instance inst =
      canonical(make_family_instance(Family::kReleaseBurst, config, 7));
  const std::string bytes = encode_stream(
      inst.jobs(), static_cast<std::uint32_t>(inst.num_resources()));
  const auto dir = fresh_dir("dedupe");

  // First run admits everything and completes.
  const DaemonOutput first =
      run_to_completion(inst, bytes, dir.string(), false);
  // A resumed daemon fed the identical stream must dedupe every Job frame
  // against the admission journal and still report identical output.
  const DaemonOutput second =
      run_to_completion(inst, bytes, dir.string(), true);
  // Every job comes back twice: once from durable state (snapshot restore +
  // journal re-admit) and once as a deduped live frame.
  EXPECT_EQ(second.result.replay_deduped, inst.num_jobs());
  EXPECT_EQ(second.result.resume_restored + second.result.resume_readmitted,
            inst.num_jobs());
  EXPECT_EQ(second.checksum, first.checksum);
  EXPECT_EQ(second.sink, first.sink);
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecoveryTest, DivergentReplayIsRejected) {
  GenConfig config;
  config.num_jobs = 10;
  const Instance inst =
      canonical(make_family_instance(Family::kMixed, config, 9));
  const std::string bytes = encode_stream(
      inst.jobs(), static_cast<std::uint32_t>(inst.num_resources()));
  const auto dir = fresh_dir("divergent");
  run_to_completion(inst, bytes, dir.string(), false);

  // Replay a stream whose first job has a different weight: same framing,
  // valid CRC, but divergent content — the daemon must refuse it.
  std::vector<Job> tampered = inst.jobs();
  tampered[0].weight += 1.0;
  const std::string bad = encode_stream(
      tampered, static_cast<std::uint32_t>(inst.num_resources()));
  ServeOptions opts = base_options(inst, "mris", nullptr);
  opts.state_dir = dir.string();
  opts.resume = true;
  std::istringstream in(bad);
  EXPECT_THROW(serve_stream(in, opts), ProtocolError);
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecoveryTest, ConfigFingerprintGuardsTheAdmissionJournal) {
  GenConfig config;
  config.num_jobs = 8;
  const Instance inst =
      canonical(make_family_instance(Family::kMixed, config, 13));
  const std::string bytes = encode_stream(
      inst.jobs(), static_cast<std::uint32_t>(inst.num_resources()));
  const auto dir = fresh_dir("fingerprint");
  run_to_completion(inst, bytes, dir.string(), false);

  // Same state dir, different scheduler: the admission journal's config
  // fingerprint must refuse the resume outright.
  ServeOptions opts = base_options(inst, "pq-wsjf", nullptr);
  opts.state_dir = dir.string();
  opts.resume = true;
  std::istringstream in(bytes);
  EXPECT_THROW(serve_stream(in, opts), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecoveryTest, AdmissionJournalRoundTripsAndTruncatesTornTails) {
  const auto dir = fresh_dir("mraj");
  const std::string path = (dir / "admissions.mraj").string();
  Job j;
  j.release = 2.0;
  j.processing = 3.0;
  j.weight = 1.5;
  j.tenant = 4;
  j.demand = {0.25, 0.75};
  {
    AdmissionJournalWriter w;
    w.open_fresh(path, 42);
    w.append(0, j);
    w.append(1, j);
  }
  AdmissionLog log = read_admission_journal(path);
  ASSERT_TRUE(log.ok) << log.error;
  EXPECT_EQ(log.fingerprint, 42u);
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.records[1].seq, 1u);
  EXPECT_EQ(log.records[0].job.demand, j.demand);
  EXPECT_EQ(log.torn_bytes, 0u);

  // Tear the tail mid-record: the second record must vanish whole.
  std::filesystem::resize_file(path, log.valid_bytes - 5);
  AdmissionLog torn = read_admission_journal(path);
  ASSERT_TRUE(torn.ok);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_GT(torn.torn_bytes, 0u);
  EXPECT_TRUE(truncate_admission_journal(path, torn.valid_bytes));
  EXPECT_EQ(std::filesystem::file_size(path), torn.valid_bytes);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mris::serve
