// End-to-end daemon tests (serve/daemon.hpp): a protocol stream served
// through serve_stream() must reproduce the batch run of the same workload
// byte-for-byte — placements, placement checksum, and the sink's rendered
// output — across generator families, schedulers, and sink kinds; the
// incremental-CADP scheduler must change none of it.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exp/schedulers.hpp"
#include "serve/protocol.hpp"
#include "testkit/generators.hpp"
#include "testkit/streams.hpp"

namespace mris::serve {
namespace {

using testkit::Family;
using testkit::GenConfig;
using testkit::make_family_instance;

/// The canonical streamed form of an instance: jobs in admission order
/// (release, ties by id), reindexed so streamed ids match batch ids.
Instance canonical(const Instance& inst) {
  std::vector<Job> jobs = inst.jobs();
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  return Instance(std::move(jobs), inst.num_machines(), inst.num_resources());
}

struct BatchReference {
  RunResult run;
  std::uint64_t checksum = 0;
  std::string sink_output;
};

/// Runs the batch engine with the same sink + checksum plumbing the daemon
/// uses, so both sides render through identical code paths.
BatchReference run_batch(const Instance& inst, const std::string& scheduler,
                         SinkKind sink_kind) {
  BatchReference ref;
  std::ostringstream sink_out;
  const std::unique_ptr<MetricsSink> sink = make_sink(sink_kind, sink_out);
  PlacementChecksum checksum;
  RunOptions opts;
  opts.on_record = [&](const EventRecord& rec) {
    if (rec.kind == EventRecord::Kind::kCommit) {
      checksum.note(rec.job, rec.machine, rec.start);
    }
    sink->event(rec);
  };
  const auto sched =
      exp::make_scheduler(exp::parse_scheduler_spec(scheduler), inst);
  ref.run = run_online(inst, *sched, opts);
  ref.checksum = checksum.value();
  ref.sink_output = sink_out.str();
  return ref;
}

ServeOptions serve_options(const Instance& inst, const std::string& scheduler,
                           MetricsSink* sink) {
  ServeOptions opts;
  opts.num_machines = inst.num_machines();
  opts.num_resources = inst.num_resources();
  opts.sink = sink;
  opts.make_scheduler = [&inst, scheduler] {
    return exp::make_scheduler(exp::parse_scheduler_spec(scheduler), inst);
  };
  return opts;
}

void expect_daemon_matches_batch(const Instance& raw,
                                 const std::string& scheduler,
                                 SinkKind sink_kind,
                                 const std::string& where) {
  const Instance inst = canonical(raw);
  const BatchReference batch = run_batch(inst, scheduler, sink_kind);

  std::istringstream in(encode_stream(
      inst.jobs(), static_cast<std::uint32_t>(inst.num_resources())));
  std::ostringstream sink_out;
  const std::unique_ptr<MetricsSink> sink = make_sink(sink_kind, sink_out);
  const ServeResult served =
      serve_stream(in, serve_options(inst, scheduler, sink.get()));

  EXPECT_EQ(served.jobs, inst.num_jobs()) << where;
  EXPECT_EQ(served.placement_checksum, batch.checksum) << where;
  EXPECT_EQ(sink_out.str(), batch.sink_output) << where;
  for (std::size_t i = 0; i < inst.num_jobs(); ++i) {
    const auto id = static_cast<JobId>(i);
    const Assignment& a = batch.run.schedule.assignment(id);
    const Assignment& b = served.run.schedule.assignment(id);
    EXPECT_EQ(a.machine, b.machine) << where << " job " << i;
    EXPECT_EQ(a.start, b.start) << where << " job " << i;
  }
}

TEST(DaemonTest, StreamedRunMatchesBatchAcrossFamilies) {
  const std::size_t iters = testkit::fuzz_iters(3);
  for (Family family : testkit::all_families()) {
    for (std::uint64_t seed = 0; seed < iters; ++seed) {
      GenConfig config;
      config.num_jobs = 24;
      const Instance inst = make_family_instance(family, config, seed);
      expect_daemon_matches_batch(
          inst, "mris", SinkKind::kCsv,
          std::string(testkit::family_name(family)) + " seed " +
              std::to_string(seed));
    }
  }
}

TEST(DaemonTest, StreamedRunMatchesBatchAcrossSchedulers) {
  GenConfig config;
  config.num_jobs = 32;
  const Instance inst = make_family_instance(Family::kMixed, config, 11);
  for (const char* scheduler :
       {"mris", "mris-greedy", "mris-evscan", "pq-wsjf", "tetris", "drf",
        "hybrid"}) {
    expect_daemon_matches_batch(inst, scheduler, SinkKind::kJsonl, scheduler);
  }
}

TEST(DaemonTest, IncrementalCadpChangesNoByte) {
  // mris-inc must match both its own batch run AND the plain mris daemon:
  // the memo/speculation path may never alter a selection.
  const std::size_t iters = testkit::fuzz_iters(3);
  for (Family family :
       {Family::kMixed, Family::kKnapsackTies, Family::kNearCapacity}) {
    for (std::uint64_t seed = 0; seed < iters; ++seed) {
      GenConfig config;
      config.num_jobs = 28;
      const Instance inst = canonical(
          make_family_instance(family, config, seed));
      expect_daemon_matches_batch(
          inst, "mris-inc", SinkKind::kCsv,
          std::string("inc/") + testkit::family_name(family) + " seed " +
              std::to_string(seed));

      std::istringstream in_plain(encode_stream(
          inst.jobs(), static_cast<std::uint32_t>(inst.num_resources())));
      std::istringstream in_inc(in_plain.str());
      const ServeResult plain =
          serve_stream(in_plain, serve_options(inst, "mris", nullptr));
      const ServeResult inc =
          serve_stream(in_inc, serve_options(inst, "mris-inc", nullptr));
      EXPECT_EQ(plain.placement_checksum, inc.placement_checksum)
          << testkit::family_name(family) << " seed " << seed;
    }
  }
}

TEST(DaemonTest, ReportsLatencyAndFrameCounts) {
  GenConfig config;
  config.num_jobs = 20;
  const Instance inst = canonical(
      make_family_instance(Family::kMixed, config, 5));
  std::istringstream in(encode_stream(
      inst.jobs(), static_cast<std::uint32_t>(inst.num_resources())));
  const ServeResult r =
      serve_stream(in, serve_options(inst, "mris", nullptr));
  EXPECT_EQ(r.frames, inst.num_jobs() + 2);  // Hello + jobs + End
  EXPECT_EQ(r.latency.samples, inst.num_jobs());
  EXPECT_GE(r.latency.p99_us, r.latency.p50_us);
  EXPECT_GE(r.latency.max_us, r.latency.p99_us);
  EXPECT_FALSE(r.resumed_from_snapshot);
}

TEST(DaemonTest, RejectsMissingFactoryAndBadShape) {
  std::istringstream in;
  ServeOptions opts;
  EXPECT_THROW(serve_stream(in, opts), std::invalid_argument);
  opts.make_scheduler = [] {
    return exp::make_scheduler(exp::parse_scheduler_spec("mris"),
                               Instance(std::vector<Job>{}, 1, 1));
  };
  opts.num_machines = 0;
  EXPECT_THROW(serve_stream(in, opts), std::invalid_argument);
}

TEST(DaemonTest, SinkKindsParse) {
  EXPECT_EQ(parse_sink_kind("null"), SinkKind::kNull);
  EXPECT_EQ(parse_sink_kind("csv"), SinkKind::kCsv);
  EXPECT_EQ(parse_sink_kind("jsonl"), SinkKind::kJsonl);
  EXPECT_THROW(parse_sink_kind("xml"), std::invalid_argument);
}

}  // namespace
}  // namespace mris::serve
