// Framing and validation tests for the daemon admission protocol
// (serve/protocol.hpp): round trips, incremental feeding, and one explicit
// rejection per grammar rule — every rejection must be a ProtocolError
// whose message names the violation, with nothing consumed from the bad
// frame onward.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/recovery/state_io.hpp"

namespace mris::serve {
namespace {

std::vector<Job> sample_jobs() {
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    Job j;
    j.release = static_cast<Time>(i) * 1.5;
    j.processing = 1.0 + 0.25 * i;
    j.weight = 2.0 + i;
    j.tenant = i % 2;
    j.demand = {0.25, 0.5};
    jobs.push_back(j);
  }
  return jobs;
}

/// Decodes a whole stream, returning the job frames.
std::vector<JobFrame> decode_all(const std::string& bytes,
                                 std::uint32_t resources) {
  FrameDecoder decoder(resources);
  decoder.feed(bytes);
  std::vector<JobFrame> jobs;
  Frame frame;
  while (decoder.next(frame)) {
    if (frame.kind == kFrameJob) jobs.push_back(frame.job);
  }
  decoder.finish();
  return jobs;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(ProtocolTest, RoundTripsAStream) {
  const std::vector<Job> jobs = sample_jobs();
  const std::string bytes = encode_stream(jobs, 2);
  const std::vector<JobFrame> decoded = decode_all(bytes, 2);
  ASSERT_EQ(decoded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(decoded[i].seq, i);
    EXPECT_TRUE(bits_equal(decoded[i].job.release, jobs[i].release));
    EXPECT_TRUE(bits_equal(decoded[i].job.processing, jobs[i].processing));
    EXPECT_TRUE(bits_equal(decoded[i].job.weight, jobs[i].weight));
    EXPECT_EQ(decoded[i].job.tenant, jobs[i].tenant);
    ASSERT_EQ(decoded[i].job.demand.size(), jobs[i].demand.size());
    for (std::size_t l = 0; l < jobs[i].demand.size(); ++l) {
      EXPECT_TRUE(bits_equal(decoded[i].job.demand[l], jobs[i].demand[l]));
    }
  }
}

TEST(ProtocolTest, DecodesOneByteAtATime) {
  const std::string bytes = encode_stream(sample_jobs(), 2);
  FrameDecoder decoder(2);
  Frame frame;
  std::size_t jobs = 0;
  for (char c : bytes) {
    decoder.feed(std::string_view(&c, 1));
    while (decoder.next(frame)) {
      if (frame.kind == kFrameJob) ++jobs;
    }
  }
  decoder.finish();
  EXPECT_EQ(jobs, sample_jobs().size());
  EXPECT_TRUE(decoder.saw_end());
}

/// Expects decoding `bytes` to throw a ProtocolError mentioning `needle`.
void expect_rejected(const std::string& bytes, const std::string& needle,
                     std::uint32_t resources = 2) {
  try {
    decode_all(bytes, resources);
    FAIL() << "expected ProtocolError containing '" << needle << "'";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

std::string hello_only() {
  std::string out;
  encode_hello(out, 2);
  return out;
}

Job valid_job() {
  Job j;
  j.release = 1.0;
  j.processing = 2.0;
  j.weight = 1.0;
  j.demand = {0.5, 0.5};
  return j;
}

TEST(ProtocolTest, RejectsJobBeforeHello) {
  std::string out;
  encode_job(out, 0, valid_job());
  expect_rejected(out, "Job before Hello");
}

TEST(ProtocolTest, RejectsDuplicateHello) {
  std::string out = hello_only();
  encode_hello(out, 2);
  expect_rejected(out, "duplicate Hello");
}

TEST(ProtocolTest, RejectsResourceMismatch) {
  expect_rejected(hello_only(), "configured for 3", 3);
}

TEST(ProtocolTest, RejectsVersionMismatch) {
  // Hand-build a Hello claiming version 99 — with a valid CRC, so the
  // version check (not the CRC check) is what fires.
  std::string out;
  {
    std::string body;
    body.push_back(static_cast<char>(kFrameHello));
    const std::uint32_t version = 99;
    const std::uint32_t resources = 2;
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<char>((version >> (8 * i)) & 0xFF));
    }
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<char>((resources >> (8 * i)) & 0xFF));
    }
    const std::uint32_t size = static_cast<std::uint32_t>(body.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((size >> (8 * i)) & 0xFF));
    }
    out += body;
    const std::uint32_t crc = recovery::crc32(body);
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
    }
  }
  expect_rejected(out, "protocol version 99");
}

TEST(ProtocolTest, RejectsCorruptedCrc) {
  std::string out = hello_only();
  out.back() = static_cast<char>(out.back() ^ 0x5A);
  expect_rejected(out, "CRC mismatch");
}

TEST(ProtocolTest, RejectsSeqGapAndDuplicate) {
  {
    std::string out = hello_only();
    encode_job(out, 1, valid_job());  // gap: expected 0
    expect_rejected(out, "expected 0");
  }
  {
    std::string out = hello_only();
    encode_job(out, 0, valid_job());
    encode_job(out, 0, valid_job());  // duplicate
    expect_rejected(out, "duplicated or out-of-order");
  }
}

TEST(ProtocolTest, RejectsReleaseRegression) {
  std::string out = hello_only();
  Job a = valid_job();
  a.release = 5.0;
  Job b = valid_job();
  b.release = 4.0;
  encode_job(out, 0, a);
  encode_job(out, 1, b);
  expect_rejected(out, "regresses");
}

TEST(ProtocolTest, RejectsInvalidJobValues) {
  const auto with = [](auto&& mutate) {
    std::string out = hello_only();
    Job j = valid_job();
    mutate(j);
    encode_job(out, 0, j);
    return out;
  };
  expect_rejected(with([](Job& j) { j.release = -1.0; }), "release");
  expect_rejected(with([](Job& j) { j.processing = 0.5; }), "processing");
  expect_rejected(with([](Job& j) { j.weight = 0.0; }), "weight");
  expect_rejected(with([](Job& j) { j.demand[0] = 1.5; }), "demand");
  expect_rejected(with([](Job& j) { j.demand = {0.0, 0.0}; }), "positive");
  const double nan = std::bit_cast<double>(0x7FF8000000000001ull);
  expect_rejected(with([nan](Job& j) { j.release = nan; }), "release");
}

TEST(ProtocolTest, RejectsEndCountMismatchAndTrailingFrames) {
  {
    std::string out = hello_only();
    encode_job(out, 0, valid_job());
    encode_end(out, 2);
    expect_rejected(out, "End claims 2");
  }
  {
    std::string out = hello_only();
    encode_end(out, 0);
    encode_job(out, 0, valid_job());
    expect_rejected(out, "frame after End");
  }
}

TEST(ProtocolTest, RejectsTruncatedStreamAtEof) {
  std::string out = hello_only();
  encode_job(out, 0, valid_job());
  // No End frame, and also cut the last frame in half.
  out.resize(out.size() - 6);
  FrameDecoder decoder(2);
  decoder.feed(out);
  Frame frame;
  while (decoder.next(frame)) {
  }
  EXPECT_THROW(decoder.finish(), ProtocolError);
}

TEST(ProtocolTest, RejectsOversizedAndZeroSizeFrames) {
  const auto size_frame = [](std::uint32_t size) {
    std::string out;
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((size >> (8 * i)) & 0xFF));
    }
    return out;
  };
  expect_rejected(size_frame(0) + std::string(8, '\0'), "size 0");
  expect_rejected(size_frame(kMaxFrameBytes + 1), "exceeds");
}

}  // namespace
}  // namespace mris::serve
