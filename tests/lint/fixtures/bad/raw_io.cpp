// Fixture: raw durable-IO calls outside src/sim/recovery/, each on a known
// line.  Never compiled — scanned by mris_lint tests only.
#include <cstdio>
#include <unistd.h>

void persist(std::FILE* f, int fd, const char* p, unsigned long n) {
  std::fwrite(p, 1, n, f);  // line 7: raw-io (fwrite)
  ::fsync(fd);              // line 8: raw-io (fsync)
  ::fdatasync(fd);          // line 9: raw-io (fdatasync)
  ::pwrite(fd, p, n, 0);    // line 10: raw-io (pwrite)
  ::write(fd, p, n);        // line 11: raw-io (global-qualified write)
}
