// Iterator-based and for_each traversal of unordered containers: the
// forms the original range-for-only rule missed.
#include <algorithm>
#include <string>
#include <unordered_map>

namespace fixture {

std::unordered_map<std::string, int> registry;

int first_value() {
  auto it = registry.begin();
  return it == registry.end() ? 0 : it->second;
}

void visit_all() {
  std::for_each(registry.begin(), registry.end(), [](auto& kv) { ++kv.second; });
}

}  // namespace fixture
