// Open-coded vector intrinsics outside src/util/simd.hpp: both the include
// and every _mm*/__m256 token must trip the raw-simd rule.
#include <immintrin.h>

double sum4(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  __m256d h = _mm256_hadd_pd(v, v);
  double out[4];
  _mm256_storeu_pd(out, h);
  return out[0] + out[2];
}
