// Fixture: a header with no #pragma once (and an include guard instead,
// which the project style forbids).
#ifndef FIXTURE_MISSING_PRAGMA_HPP_
#define FIXTURE_MISSING_PRAGMA_HPP_

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture

#endif  // FIXTURE_MISSING_PRAGMA_HPP_
