// Fixture: one violation of every content rule, each on a known line.
// Never compiled — scanned by mris_lint tests only.
#include <cassert>  // line 3: naked-assert (cassert include)
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <random>
#include <unordered_map>

int bad_entropy() {
  int a = std::rand();     // line 12: determinism-rand
  long b = time(nullptr);  // line 13: determinism-time
  std::random_device rd;   // line 14: determinism-rand
  return a + static_cast<int>(b) + static_cast<int>(rd());
}

double bad_iteration(const std::unordered_map<int, double>& totals) {
  double total = 0.0;
  for (const auto& [k, v] : totals) total += v;  // line 20: unordered-iter
  return total;
}

float bad_width(double x) {  // line 24: no-float
  assert(x > 0.0);           // line 25: naked-assert
  std::cout << x << "\n";    // line 26: stdout
  return static_cast<float>(x);
}
