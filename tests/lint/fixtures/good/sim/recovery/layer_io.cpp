// Fixture: the same raw IO calls are allowed here — the path contains
// sim/recovery/, the layer that owns durable writes.  Method calls named
// write and write_* helpers are fine anywhere.  Never compiled.
#include <cstdio>
#include <unistd.h>

struct Store {
  void write(const char* p, unsigned long n);
};

void layer_write(std::FILE* f, int fd, const char* p, unsigned long n) {
  std::fwrite(p, 1, n, f);  // allowed: inside the recovery IO layer
  ::fsync(fd);              // allowed: inside the recovery IO layer
  ::write(fd, p, n);        // allowed: inside the recovery IO layer
}
