// Fixture: a header obeying every mris_lint rule.  Comments and strings
// may mention rand(), time(), float and std::cout freely — the linter
// strips them before matching.
#pragma once

#include <cstdio>
#include <string>

namespace fixture {

/// Not a violation: "float" and srand() only appear in comments/strings.
inline std::string describe() { return "no float, no rand(), no time()"; }

/// Identifiers containing rule words are not violations.
inline double start_time(double completion_time) { return completion_time; }

inline double large = 1'000.5;  // digit separator is not a char literal

/// A genuine violation silenced by a same-line suppression.
inline void banner() {
  std::printf("fixture\n");  // mris-lint: allow(stdout)
}

/// A genuine violation silenced by a previous-line suppression.
// mris-lint: allow(no-float)
inline float narrow(double x) { return static_cast<float>(x); }

}  // namespace fixture
