// Fixture: a clean translation unit.  Raw strings may contain anything.
#include <string>
#include <vector>

namespace fixture {

const std::string kDoc = R"doc(
  rand() time() float assert(std::cout) — all inert inside a raw string.
)doc";

double sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

}  // namespace fixture
