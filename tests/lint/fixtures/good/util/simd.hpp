// Path-exemption fixture: this file's path ends in util/simd.hpp, the one
// place the raw-simd rule licenses vector intrinsics.
#pragma once

#include <immintrin.h>

inline __m256d add4(__m256d a, __m256d b) { return _mm256_add_pd(a, b); }
