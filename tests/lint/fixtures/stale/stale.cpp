// Fixture for the --stale audit: one live suppression (kept) and one
// stale suppression (reported).
namespace fixture {

// Live: the rule really fires on the line below, so the comment earns
// its keep.
// mris-lint: allow(no-float)
float narrow = 0.0f;

// Stale: nothing on this line (or the next) triggers no-float anymore —
// the audit reports exactly this comment.
int widened = 0;  // mris-lint: allow(no-float)

}  // namespace fixture
