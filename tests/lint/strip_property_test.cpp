// Property tests for lint_core's strip_comments_and_strings, the text
// model every mris_lint rule and the whole mris_analyze frontend sit on.
//
// Random interleavings of the constructs the stripper must parse — raw
// strings, escaped quotes, char literals, digit separators, block
// comments, preprocessor line continuations — are checked against four
// properties of the stripper's contract:
//
//   P1 length preservation   (in-place blanking: |strip(s)| == |s|)
//   P2 newline preservation  (line numbers survive)
//   P3 idempotence           (strip(strip(s)) == strip(s))
//   P4 payload containment   (comment/string payloads are gone, code
//                             tokens survive verbatim)
//
// A failing interleaving is ddmin-shrunk line-wise while it keeps
// failing, and the minimized source is written to the testkit artifacts
// directory as a ready-to-replay .corpus text file.
#include "tools/lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "testkit/oracles.hpp"
#include "util/rng.hpp"
#include "testkit/streams.hpp"

namespace mris::lint {
namespace {

// Fragments whose ZZQQ markers live only in comment/string payloads and
// whose KEEPTOK markers live only in code.  Some span multiple lines on
// purpose (block comments, raw strings, spliced literals).
const std::vector<std::string>& fragments() {
  static const std::vector<std::string> kFragments = {
      "int KEEPTOK_a = 1;",
      "double KEEPTOK_b = x + y;",
      "for (int i = 0; i < n; ++i) sum += i;",
      "int big = 1'000'000;",
      "char c = 'q';",
      "char esc = '\\'';",
      "// ZZQQ hidden \"quote\" 'c'",
      "/* ZZQQ one-line */ int KEEPTOK_c = 2;",
      "/* ZZQQ multi\n   line ZZQQ */",
      "const char* s = \"ZZQQ \\\" escaped\";",
      "const char* t = \"ZZQQ \\\n spliced ZZQQ\";",
      "auto r = R\"tag(ZZQQ \" // ZZQQ not a comment\n)tag\";",
      "auto r2 = R\"(ZZQQ 'x' /* ZZQQ */)\";",
      "#define KEEPTOK_M(x) \\\n  ((x) + 1)",
      "u8\"ZZQQ utf8\";",
      "int KEEPTOK_d = 0; // ZZQQ trailing",
  };
  return kFragments;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

/// Empty string when all four properties hold, else a short diagnosis.
std::string violated_property(const std::string& source) {
  const std::string stripped = strip_comments_and_strings(source);
  if (stripped.size() != source.size()) return "P1 length changed";
  if (std::count(stripped.begin(), stripped.end(), '\n') !=
      std::count(source.begin(), source.end(), '\n')) {
    return "P2 newline count changed";
  }
  if (strip_comments_and_strings(stripped) != stripped) {
    return "P3 not idempotent";
  }
  if (count_occurrences(stripped, "ZZQQ") != 0) {
    return "P4 comment/string payload survived";
  }
  if (count_occurrences(stripped, "KEEPTOK") !=
      count_occurrences(source, "KEEPTOK")) {
    return "P4 code token count changed";
  }
  return "";
}

std::string assemble(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// ddmin over fragment slots: drop chunks of n/2, n/4, ..., 1 while the
/// assembled source still violates a property.
std::vector<std::string> shrink_fragments(std::vector<std::string> lines) {
  for (std::size_t chunk = std::max<std::size_t>(lines.size() / 2, 1);;) {
    bool removed = false;
    for (std::size_t at = 0; at + chunk <= lines.size();) {
      std::vector<std::string> candidate = lines;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at),
                      candidate.begin() + static_cast<std::ptrdiff_t>(at + chunk));
      if (!violated_property(assemble(candidate)).empty()) {
        lines = std::move(candidate);
        removed = true;
      } else {
        at += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed) break;  // fixpoint at granularity 1
    } else {
      chunk = std::max<std::size_t>(chunk / 2, 1);
    }
  }
  return lines;
}

TEST(StripPropertyTest, RandomInterleavingsHoldAllProperties) {
  const std::uint64_t kMaster = 0x5717A9ULL;
  auto rng = testkit::make_stream(kMaster, "lint/strip-property");
  const std::uint64_t iters = testkit::fuzz_iters(60);
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::size_t n =
        1 + static_cast<std::size_t>(util::uniform_index(rng, 24));
    std::vector<std::string> lines;
    lines.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      lines.push_back(fragments()[static_cast<std::size_t>(
          util::uniform_index(rng, fragments().size()))]);
    }
    const std::string source = assemble(lines);
    const std::string why = violated_property(source);
    if (why.empty()) continue;

    const std::vector<std::string> minimal = shrink_fragments(lines);
    const std::string artifact =
        testkit::artifacts_dir() + "/strip_property_iter" +
        std::to_string(iter) + ".corpus";
    std::filesystem::create_directories(testkit::artifacts_dir());
    std::ofstream out(artifact, std::ios::binary);
    out << "# strip_comments_and_strings property counterexample\n"
        << "# violated: " << violated_property(assemble(minimal)) << "\n"
        << assemble(minimal);
    FAIL() << why << " at iteration " << iter << "; minimized to "
           << minimal.size() << " fragment(s), written to " << artifact;
  }
}

TEST(StripPropertyTest, EveryFragmentAloneIsClean) {
  for (const std::string& frag : fragments()) {
    EXPECT_EQ(violated_property(frag + "\n"), "") << frag;
  }
}

TEST(StripPropertyTest, ShrinkerReducesASeededFailure) {
  // Sanity-check the shrinking loop itself on a synthetic "failure": a
  // predicate violated by any source containing a marker fragment.  (The
  // real properties hold, so the shrinker's failure path never runs in a
  // green build.)
  std::vector<std::string> lines = {
      "int KEEPTOK_a = 1;", "char c = 'q';", "int big = 1'000'000;",
      "// ZZQQ hidden",     "char c = 'q';",
  };
  // Reuse the machinery with a stand-in property: "contains ZZQQ".
  // shrink_fragments minimizes against violated_property, so emulate by
  // checking the real shrinker keeps failing sources failing: here we just
  // assert ddmin preserves the one line P4 would blame if the stripper
  // ever leaked it.
  const std::string source = assemble(lines);
  ASSERT_EQ(violated_property(source), "");  // green stripper: no failure
  // Exercise the chunk loop on a degenerate instance (nothing removable).
  const auto kept = shrink_fragments({lines[3]});
  EXPECT_EQ(kept.size(), 1u);
}

}  // namespace
}  // namespace mris::lint
