#include "tools/lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace mris::lint {
namespace {

std::vector<Finding> lint(const std::string& source,
                          const std::string& path = "x/test.cpp") {
  return lint_source(path, source);
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule,
              int line = -1) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && (line < 0 || f.line == line);
  });
}

// --- comment/string stripping --------------------------------------------

TEST(LintStripTest, LineCommentsAreBlanked) {
  const std::string s = strip_comments_and_strings("int x; // rand()\nint y;");
  EXPECT_EQ(s.find("rand"), std::string::npos);
  EXPECT_NE(s.find("int y;"), std::string::npos);
}

TEST(LintStripTest, BlockCommentsPreserveNewlines) {
  const std::string s =
      strip_comments_and_strings("a /* rand()\n time() */ b");
  EXPECT_EQ(s.find("rand"), std::string::npos);
  EXPECT_EQ(s.find("time"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 1);
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('b'), std::string::npos);
}

TEST(LintStripTest, StringLiteralsAreBlanked) {
  const std::string s =
      strip_comments_and_strings("call(\"rand() \\\" time()\");");
  EXPECT_EQ(s.find("rand"), std::string::npos);
  EXPECT_EQ(s.find("time"), std::string::npos);
  EXPECT_NE(s.find("call("), std::string::npos);
}

TEST(LintStripTest, RawStringsAreBlanked) {
  const std::string s = strip_comments_and_strings(
      "auto d = R\"doc(rand() \" ' float)doc\"; int after;");
  EXPECT_EQ(s.find("rand"), std::string::npos);
  EXPECT_EQ(s.find("float"), std::string::npos);
  EXPECT_NE(s.find("int after;"), std::string::npos);
}

TEST(LintStripTest, DigitSeparatorIsNotACharLiteral) {
  const std::string s =
      strip_comments_and_strings("int n = 1'000'000; float f;");
  EXPECT_NE(s.find("float f;"), std::string::npos);
}

TEST(LintStripTest, CharLiteralsAreBlanked) {
  const std::string s = strip_comments_and_strings("char c = 'f'; int g;");
  // The 'f' must not survive as code, the rest must.
  EXPECT_NE(s.find("char c ="), std::string::npos);
  EXPECT_NE(s.find("int g;"), std::string::npos);
  EXPECT_EQ(s.find("'f'"), std::string::npos);
}

// --- rules ----------------------------------------------------------------

TEST(LintRuleTest, FlagsRandFamily) {
  EXPECT_TRUE(has_rule(lint("int x = std::rand();"), "determinism-rand", 1));
  EXPECT_TRUE(has_rule(lint("srand(7);"), "determinism-rand", 1));
  EXPECT_TRUE(
      has_rule(lint("std::random_device rd;"), "determinism-rand", 1));
  EXPECT_TRUE(has_rule(lint("std::mt19937 gen;"), "determinism-rand", 1));
}

TEST(LintRuleTest, FlagsWallClockReads) {
  EXPECT_TRUE(has_rule(lint("long t = time(nullptr);"), "determinism-time"));
  EXPECT_TRUE(has_rule(lint("auto c = clock();"), "determinism-time"));
  EXPECT_TRUE(has_rule(lint("auto n = std::chrono::steady_clock::now();"),
                       "determinism-time"));
}

TEST(LintRuleTest, IdentifiersContainingRuleWordsAreClean) {
  EXPECT_TRUE(lint("double completion_time(int j);").empty());
  EXPECT_TRUE(lint("double start_time = 0.0;").empty());
  EXPECT_TRUE(lint("int operand = 3;").empty());
  EXPECT_TRUE(lint("static_assert(sizeof(int) == 4);").empty());
}

TEST(LintRuleTest, RngHeaderIsExemptFromDeterminismRules) {
  EXPECT_TRUE(
      lint_source("src/util/rng.hpp",
                  "#pragma once\n// impl\nstd::uint64_t x = rand();\n")
          .empty());
}

TEST(LintRuleTest, FlagsUnorderedIteration) {
  EXPECT_TRUE(has_rule(lint("for (auto& kv : unordered_map_) f(kv);"),
                       "unordered-iter"));
  EXPECT_TRUE(lint("for (auto& kv : sorted_map_) f(kv);").empty());
  // Declaring one is fine; only iterating is flagged.
  EXPECT_TRUE(lint("std::unordered_map<int, int> m;").empty());
}

TEST(LintRuleTest, TracksUnorderedVariablesAcrossLines) {
  // The declaration and the range-for are lines apart; the linter remembers
  // which identifiers were declared with an unordered_* type.
  EXPECT_TRUE(has_rule(lint("std::unordered_map<int, int> hist;\n"
                            "void f() {\n"
                            "  for (auto& kv : hist) g(kv);\n"
                            "}\n"),
                       "unordered-iter", 3));
  // Reference parameters count as declarations too.
  EXPECT_TRUE(has_rule(lint("void f(const std::unordered_set<int>& seen) {\n"
                            "  for (int s : seen) g(s);\n"
                            "}\n"),
                       "unordered-iter", 2));
  // A for loop over an unrelated name stays clean.
  EXPECT_TRUE(lint("std::unordered_map<int, int> hist;\n"
                   "void f(std::vector<int>& v) {\n"
                   "  for (int s : v) g(s);\n"
                   "}\n")
                  .empty());
}

TEST(LintRuleTest, FlagsIteratorAndForEachTraversal) {
  // begin()-family iterators on a known unordered variable.
  EXPECT_TRUE(has_rule(lint("std::unordered_map<int, int> hist;\n"
                            "void f() {\n"
                            "  auto it = hist.begin();\n"
                            "}\n"),
                       "unordered-iter", 3));
  // std::for_each over an unordered container.
  EXPECT_TRUE(has_rule(lint("std::unordered_set<int> seen;\n"
                            "void f() {\n"
                            "  std::for_each(seen.cbegin(), seen.cend(), g);\n"
                            "}\n"),
                       "unordered-iter", 3));
  // begin() on an ordered container stays clean.
  EXPECT_TRUE(lint("std::map<int, int> sorted;\n"
                   "void f() {\n"
                   "  auto it = sorted.begin();\n"
                   "}\n")
                  .empty());
  // A range-for line is reported once, not once per matching branch.
  const auto findings = lint("std::unordered_map<int, int> hist;\n"
                             "void f() {\n"
                             "  for (auto& kv : hist) g(kv);\n"
                             "}\n");
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintRuleTest, FlagsFloat) {
  EXPECT_TRUE(has_rule(lint("float f = 0.5f;"), "no-float", 1));
  EXPECT_TRUE(lint("double d = 0.5; int afloat = 1;").empty());
}

TEST(LintRuleTest, FlagsNakedAssertButNotContractsHeader) {
  EXPECT_TRUE(has_rule(lint("assert(x > 0);"), "naked-assert"));
  EXPECT_TRUE(has_rule(lint("#include <cassert>"), "naked-assert"));
  EXPECT_TRUE(lint_source("src/util/contracts.hpp",
                          "#pragma once\nvoid f() { assert(1); }\n")
                  .empty());
}

TEST(LintRuleTest, FlagsStdout) {
  EXPECT_TRUE(has_rule(lint("std::cout << x;"), "stdout"));
  EXPECT_TRUE(has_rule(lint("printf(\"%d\", x);"), "stdout"));
  EXPECT_TRUE(lint("std::snprintf(buf, sizeof buf, \"%d\", x);").empty());
}

TEST(LintRuleTest, FlagsRawIoOutsideRecoveryLayer) {
  EXPECT_TRUE(has_rule(lint("std::fwrite(p, 1, n, f);"), "raw-io"));
  EXPECT_TRUE(has_rule(lint("::fsync(fd);"), "raw-io"));
  EXPECT_TRUE(has_rule(lint("fdatasync(fd);"), "raw-io"));
  EXPECT_TRUE(has_rule(lint("pwrite(fd, p, n, 0);"), "raw-io"));
  EXPECT_TRUE(has_rule(lint("::write(fd, p, n);"), "raw-io"));
}

TEST(LintRuleTest, RawIoSparesMethodsHelpersAndRecoveryLayer) {
  // Method calls and write_* helpers are not the write(2) syscall.
  EXPECT_TRUE(lint("store->write(meta, payload);").empty());
  EXPECT_TRUE(lint("snapstore_.write(meta, payload);").empty());
  EXPECT_TRUE(lint("util::write_csv(f, table);").empty());
  EXPECT_TRUE(lint("exp::write_series_csv(path, series);").empty());
  // The recovery IO layer itself owns raw durable writes.
  EXPECT_TRUE(lint_source("src/sim/recovery/journal.cpp",
                          "void f() { std::fwrite(p, 1, n, file); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/sim/recovery/snapshot.cpp",
                          "void f() { ::fsync(fd); ::write(fd, p, n); }\n")
                  .empty());
}

TEST(LintRuleTest, FlagsVectorIntrinsicsOutsideSimdLayer) {
  EXPECT_TRUE(has_rule(lint("#include <immintrin.h>"), "raw-simd"));
  EXPECT_TRUE(has_rule(lint("__m256d v = _mm256_loadu_pd(p);"), "raw-simd"));
  EXPECT_TRUE(has_rule(lint("auto m = _mm_set1_pd(x);"), "raw-simd"));
  EXPECT_TRUE(has_rule(lint("__m512d z;"), "raw-simd"));
}

TEST(LintRuleTest, RawSimdSparesLookalikesAndTheSimdLayer) {
  // Identifiers merely containing the prefixes are not intrinsics.
  EXPECT_TRUE(lint("int comm_mm = 0; double x_mm256 = 1.0;").empty());
  EXPECT_TRUE(lint("shared_memory__m256 = nullptr;").empty());
  // The kernel layer itself owns the intrinsics (path-suffix exemption).
  EXPECT_TRUE(lint_source("src/util/simd.hpp",
                          "__m256d v = _mm256_add_pd(a, b);\n"
                          "#pragma once\n")
                  .empty());
  // Suppressions work like every other rule.
  EXPECT_FALSE(has_rule(
      lint("__m256d v;  // mris-lint: allow(raw-simd)"), "raw-simd"));
}

TEST(LintRuleTest, HeaderRequiresPragmaOnce) {
  EXPECT_TRUE(has_rule(lint_source("x/h.hpp", "int f();\n"), "pragma-once", 1));
  EXPECT_TRUE(lint_source("x/h.hpp", "#pragma once\nint f();\n").empty());
  // Not required for .cpp files.
  EXPECT_TRUE(lint_source("x/h.cpp", "int f() { return 1; }\n").empty());
}

// --- suppressions ----------------------------------------------------------

TEST(LintSuppressionTest, SameLineAllowSilencesRule) {
  EXPECT_TRUE(lint("float f;  // mris-lint: allow(no-float)").empty());
}

TEST(LintSuppressionTest, PreviousLineAllowSilencesRule) {
  EXPECT_TRUE(
      lint("// mris-lint: allow(no-float)\nfloat f;").empty());
}

TEST(LintSuppressionTest, AllowAllSilencesEveryRule) {
  EXPECT_TRUE(lint("float f = rand();  // mris-lint: allow(all)").empty());
}

TEST(LintSuppressionTest, WrongRuleDoesNotSilence) {
  EXPECT_TRUE(has_rule(lint("float f;  // mris-lint: allow(stdout)"),
                       "no-float"));
}

TEST(LintSuppressionTest, FileLevelAllowSilencesWholeFile) {
  EXPECT_TRUE(lint("// mris-lint: allow-file(no-float)\n\nfloat a;\nfloat b;")
                  .empty());
}

TEST(LintSuppressionTest, NoSuppressModeReportsAnyway) {
  Options options;
  options.honor_suppressions = false;
  EXPECT_TRUE(has_rule(
      lint_source("x/test.cpp", "float f;  // mris-lint: allow(no-float)",
                  options),
      "no-float"));
}

// --- stale-suppression audit ----------------------------------------------

TEST(LintStaleTest, LiveSuppressionIsNotStale) {
  EXPECT_TRUE(stale_suppressions(
                  "x/test.cpp", "float f;  // mris-lint: allow(no-float)")
                  .empty());
  // A previous-line allow covering the next line is live too.
  EXPECT_TRUE(stale_suppressions(
                  "x/test.cpp", "// mris-lint: allow(no-float)\nfloat f;")
                  .empty());
}

TEST(LintStaleTest, OrphanedSuppressionIsReported) {
  const auto stale = stale_suppressions(
      "x/test.cpp", "int i = 0;  // mris-lint: allow(no-float)");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].line, 1);
  EXPECT_EQ(stale[0].rule, "no-float");
  EXPECT_FALSE(stale[0].file_wide);
  // The fix-style rendering names the comment to delete.
  EXPECT_NE(format_stale(stale[0]).find("allow(no-float)"), std::string::npos);
}

TEST(LintStaleTest, AllowAllIsLiveIfAnyRuleFires) {
  EXPECT_TRUE(stale_suppressions(
                  "x/test.cpp", "float f = rand();  // mris-lint: allow(all)")
                  .empty());
  EXPECT_EQ(stale_suppressions(
                "x/test.cpp", "int i = 0;  // mris-lint: allow(all)")
                .size(),
            1u);
}

TEST(LintStaleTest, FileWideSuppressionCheckedAgainstWholeFile) {
  // Live: a float appears further down the file.
  EXPECT_TRUE(stale_suppressions("x/test.cpp",
                                 "// mris-lint: allow-file(no-float)\n"
                                 "int a;\n"
                                 "float b;\n")
                  .empty());
  // Stale: the rule never fires anywhere.
  const auto stale = stale_suppressions("x/test.cpp",
                                        "// mris-lint: allow-file(no-float)\n"
                                        "int a;\n");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_TRUE(stale[0].file_wide);
}

// --- fixture files (the same ones the ctest invocations scan) -------------

TEST(LintFixtureTest, GoodFixturesAreClean) {
  const auto files = collect_sources(std::string(MRIS_LINT_FIXTURES) + "/good");
  ASSERT_GE(files.size(), 2u);
  for (const auto& path : files) {
    const auto findings = lint_file(path);
    for (const auto& f : findings) ADD_FAILURE() << format_finding(f);
  }
}

TEST(LintFixtureTest, BadFixturesTripEveryRule) {
  const auto dir = std::string(MRIS_LINT_FIXTURES) + "/bad";
  std::vector<Finding> all;
  for (const auto& path : collect_sources(dir)) {
    const auto findings = lint_file(path);
    all.insert(all.end(), findings.begin(), findings.end());
  }
  EXPECT_TRUE(has_rule(all, "determinism-rand"));
  EXPECT_TRUE(has_rule(all, "determinism-time"));
  EXPECT_TRUE(has_rule(all, "unordered-iter"));
  EXPECT_TRUE(has_rule(all, "no-float"));
  EXPECT_TRUE(has_rule(all, "naked-assert"));
  EXPECT_TRUE(has_rule(all, "stdout"));
  EXPECT_TRUE(has_rule(all, "pragma-once"));
  EXPECT_TRUE(has_rule(all, "raw-io"));
}

TEST(LintFixtureTest, RawIoFixtureLinesAreExact) {
  const auto findings =
      lint_file(std::string(MRIS_LINT_FIXTURES) + "/bad/raw_io.cpp");
  EXPECT_TRUE(has_rule(findings, "raw-io", 7));   // fwrite
  EXPECT_TRUE(has_rule(findings, "raw-io", 8));   // fsync
  EXPECT_TRUE(has_rule(findings, "raw-io", 9));   // fdatasync
  EXPECT_TRUE(has_rule(findings, "raw-io", 10));  // pwrite
  EXPECT_TRUE(has_rule(findings, "raw-io", 11));  // ::write
  for (const auto& f : findings) EXPECT_EQ(f.rule, "raw-io");
}

TEST(LintFixtureTest, BadFixtureLinesAreExact) {
  const auto findings =
      lint_file(std::string(MRIS_LINT_FIXTURES) + "/bad/violations.cpp");
  EXPECT_TRUE(has_rule(findings, "naked-assert", 3));
  EXPECT_TRUE(has_rule(findings, "determinism-rand", 12));
  EXPECT_TRUE(has_rule(findings, "determinism-time", 13));
  EXPECT_TRUE(has_rule(findings, "determinism-rand", 14));
  EXPECT_TRUE(has_rule(findings, "unordered-iter", 20));
  EXPECT_TRUE(has_rule(findings, "no-float", 24));
  EXPECT_TRUE(has_rule(findings, "naked-assert", 25));
  EXPECT_TRUE(has_rule(findings, "stdout", 26));
}

TEST(LintFixtureTest, CollectSourcesIsSortedAndFiltered) {
  const auto files = collect_sources(MRIS_LINT_FIXTURES);
  ASSERT_GE(files.size(), 4u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  for (const auto& f : files) {
    EXPECT_TRUE(f.ends_with(".hpp") || f.ends_with(".cpp")) << f;
  }
}

}  // namespace
}  // namespace mris::lint
