// End-to-end pipeline tests: synthetic Azure-like trace -> downsample ->
// instance -> every scheduler -> validated schedules and the paper's
// qualitative relationships.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "exp/runner.hpp"
#include "trace/generator.hpp"
#include "trace/sampling.hpp"

namespace mris {
namespace {

Instance trace_instance(std::size_t base_jobs, std::size_t factor,
                        std::size_t delta, int machines,
                        std::uint64_t seed = 21) {
  trace::GeneratorConfig cfg;  // paper-like defaults (12.5 d, heavy tails)
  cfg.num_jobs = base_jobs;
  cfg.seed = seed;
  const trace::Workload base = generate_azure_like(cfg);
  return to_instance(merge_storage(downsample(base, factor, delta)),
                     machines);
}

TEST(EndToEndTest, EverySchedulerFeasibleOnTracePipeline) {
  const Instance inst = trace_instance(2000, 4, 1, 5);
  for (const auto& spec : exp::comparison_lineup()) {
    const exp::EvalResult r = exp::evaluate(inst, spec);
    EXPECT_GT(r.awct, 0.0) << spec.display_name();
    EXPECT_GT(r.makespan, 0.0) << spec.display_name();
  }
}

TEST(EndToEndTest, MrisWinsUnderHeavyLoad) {
  // Few machines + many contended jobs: the regime where the paper reports
  // MRIS's advantage (Figs 3 and 4).
  const Instance inst = trace_instance(4000, 2, 0, 1);
  const exp::EvalResult mris =
      exp::evaluate(inst, exp::SchedulerSpec::Mris());
  const exp::EvalResult pq =
      exp::evaluate(inst, exp::SchedulerSpec::Pq(Heuristic::kWsjf));
  const exp::EvalResult tetris =
      exp::evaluate(inst, exp::SchedulerSpec::Tetris());
  EXPECT_LT(mris.awct, pq.awct)
      << "MRIS should beat PQ under heavy load (Fig 4)";
  EXPECT_LT(mris.awct, tetris.awct);
}

TEST(EndToEndTest, PqFamilyClusterTogether) {
  // The paper observes TETRIS, BF-EXEC and PQ perform similarly.
  const Instance inst = trace_instance(2000, 2, 0, 5);
  const exp::EvalResult pq =
      exp::evaluate(inst, exp::SchedulerSpec::Pq(Heuristic::kWsjf));
  const exp::EvalResult tetris =
      exp::evaluate(inst, exp::SchedulerSpec::Tetris());
  const exp::EvalResult bfexec =
      exp::evaluate(inst, exp::SchedulerSpec::BfExec());
  EXPECT_LT(tetris.awct / pq.awct, 3.0);
  EXPECT_GT(tetris.awct / pq.awct, 1.0 / 3.0);
  EXPECT_LT(bfexec.awct / pq.awct, 3.0);
  EXPECT_GT(bfexec.awct / pq.awct, 1.0 / 3.0);
}

TEST(EndToEndTest, CaPqHasWorstMeanQueuingDelay) {
  const Instance inst = trace_instance(2000, 2, 0, 5);
  const auto lineup = exp::comparison_lineup();
  double capq_delay = 0.0;
  double max_other = 0.0;
  for (const auto& spec : lineup) {
    const exp::EvalResult r = exp::evaluate(inst, spec);
    if (spec.kind == exp::SchedulerKind::kCaPq) {
      capq_delay = r.mean_delay;
    } else {
      max_other = std::max(max_other, r.mean_delay);
    }
  }
  EXPECT_GE(capq_delay, max_other * 0.8)
      << "CA-PQ should be (near-)worst in queuing delay (Fig 5)";
}

TEST(EndToEndTest, DownsampleOffsetsGiveDistinctButSimilarResults) {
  // Two offsets of the same base trace: different instances, same regime.
  const Instance a = trace_instance(2000, 4, 0, 5);
  const Instance b = trace_instance(2000, 4, 2, 5);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  const double awct_a =
      exp::evaluate(a, exp::SchedulerSpec::Pq(Heuristic::kWsjf)).awct;
  const double awct_b =
      exp::evaluate(b, exp::SchedulerSpec::Pq(Heuristic::kWsjf)).awct;
  EXPECT_NE(awct_a, awct_b);
  EXPECT_LT(std::abs(awct_a - awct_b) / awct_a, 1.0);
}

TEST(EndToEndTest, ResourceAugmentationDegradesPqMoreThanMris) {
  // Fig 6's mechanism at test scale: adding synthetic resources hurts
  // pack-greedy schedulers more than MRIS.  We assert the weak form: both
  // still produce feasible schedules and AWCT does not *improve* for PQ.
  trace::GeneratorConfig cfg;
  cfg.num_jobs = 800;
  cfg.seed = 31;
  const trace::Workload base = merge_storage(generate_azure_like(cfg));
  util::Xoshiro256 rng(4);
  const trace::Workload wide = augment_resources(base, 12, trace::kCpu, rng);

  const Instance narrow_inst = to_instance(base, 4);
  const Instance wide_inst = to_instance(wide, 4);
  const double pq_narrow =
      exp::evaluate(narrow_inst, exp::SchedulerSpec::Pq(Heuristic::kWsjf)).awct;
  const double pq_wide =
      exp::evaluate(wide_inst, exp::SchedulerSpec::Pq(Heuristic::kWsjf)).awct;
  EXPECT_GE(pq_wide, pq_narrow * 0.99)
      << "more resource constraints cannot help PQ";
}

}  // namespace
}  // namespace mris
