// Tests of the experiment harness itself: spec naming, evaluation,
// parallel replication, and the terminal/CSV rendering helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "exp/ascii.hpp"
#include "exp/runner.hpp"
#include "trace/generator.hpp"

namespace mris::exp {
namespace {

TEST(SpecTest, DisplayNames) {
  EXPECT_EQ(SchedulerSpec::Mris().display_name(), "MRIS-WSJF");
  EXPECT_EQ(SchedulerSpec::Mris(Heuristic::kSvf,
                                knapsack::Backend::kGreedyConstraint)
                .display_name(),
            "MRIS-SVF-GREEDY");
  EXPECT_EQ(SchedulerSpec::Pq(Heuristic::kErf).display_name(), "PQ-ERF");
  EXPECT_EQ(SchedulerSpec::Tetris().display_name(), "TETRIS");
  EXPECT_EQ(SchedulerSpec::BfExec().display_name(), "BF-EXEC");
  EXPECT_EQ(SchedulerSpec::CaPq().display_name(), "CA-PQ-WSJF");
  SchedulerSpec custom = SchedulerSpec::Tetris();
  custom.label = "mine";
  EXPECT_EQ(custom.display_name(), "mine");
}

TEST(SpecTest, LineupHasSixSchedulers) {
  EXPECT_EQ(comparison_lineup().size(), 6u);
}

TEST(SpecParseTest, CanonicalNames) {
  EXPECT_EQ(parse_scheduler_spec("mris").display_name(), "MRIS-WSJF");
  EXPECT_EQ(parse_scheduler_spec("MRIS").display_name(), "MRIS-WSJF");
  EXPECT_EQ(parse_scheduler_spec("mris-greedy").display_name(),
            "MRIS-WSJF-GREEDY");
  EXPECT_EQ(parse_scheduler_spec("mris-nobf").display_name(),
            "MRIS-WSJF-nobf");
  EXPECT_EQ(parse_scheduler_spec("mris-evscan").display_name(),
            "MRIS-WSJF-evscan");
  EXPECT_EQ(parse_scheduler_spec("tetris").display_name(), "TETRIS");
  EXPECT_EQ(parse_scheduler_spec("bfexec").display_name(), "BF-EXEC");
  EXPECT_EQ(parse_scheduler_spec("bf-exec").display_name(), "BF-EXEC");
  EXPECT_EQ(parse_scheduler_spec("drf").display_name(), "DRF");
  EXPECT_EQ(parse_scheduler_spec("hybrid").display_name(), "HYBRID-WSJF");
}

TEST(SpecParseTest, PqHeuristicSuffixes) {
  EXPECT_EQ(parse_scheduler_spec("pq").display_name(), "PQ-WSJF");
  EXPECT_EQ(parse_scheduler_spec("pq-svf").display_name(), "PQ-SVF");
  EXPECT_EQ(parse_scheduler_spec("pq-erf").display_name(), "PQ-ERF");
  EXPECT_EQ(parse_scheduler_spec("capq").display_name(), "CA-PQ-WSJF");
  EXPECT_EQ(parse_scheduler_spec("capq-wsvf").display_name(), "CA-PQ-WSVF");
}

TEST(SpecParseTest, RejectsUnknownNames) {
  EXPECT_THROW(parse_scheduler_spec("fifo"), std::invalid_argument);
  EXPECT_THROW(parse_scheduler_spec("pq-zzz"), std::invalid_argument);
  EXPECT_THROW(parse_scheduler_spec(""), std::invalid_argument);
}

TEST(SpecParseTest, ParsedSpecsInstantiate) {
  const Instance inst =
      InstanceBuilder(1, 1).add(0.0, 1.0, 1.0, {0.5}).build();
  for (const char* name :
       {"mris", "mris-greedy", "mris-evscan", "pq-sjf", "capq", "tetris",
        "bfexec", "drf", "hybrid"}) {
    const auto sched = make_scheduler(parse_scheduler_spec(name), inst);
    EXPECT_FALSE(sched->name().empty()) << name;
  }
}

TEST(EvaluateTest, MetricsConsistent) {
  const Instance inst = trace::make_patience_instance(30, 2, 10.0, 3);
  const EvalResult r = evaluate(inst, SchedulerSpec::Pq(Heuristic::kWsjf));
  EXPECT_EQ(r.num_jobs, 31u);
  EXPECT_NEAR(r.awct * static_cast<double>(r.num_jobs), r.twct, 1e-6);
  EXPECT_GT(r.makespan, 10.0);
  EXPECT_GE(r.mean_delay, 0.0);
}

TEST(ReplicateTest, AggregatesAcrossReplications) {
  const PointResult p = replicate(
      6,
      [](std::size_t rep) {
        return trace::make_patience_instance(20, 2, 10.0, rep + 1);
      },
      SchedulerSpec::Pq(Heuristic::kWsjf));
  EXPECT_EQ(p.awct.n, 6u);
  EXPECT_GT(p.awct.mean, 0.0);
  EXPECT_GT(p.awct.half_width, 0.0);  // distinct seeds -> non-zero CI
  EXPECT_LT(p.awct.half_width, p.awct.mean);
}

TEST(ReplicateTest, DeterministicAcrossCalls) {
  auto factory = [](std::size_t rep) {
    return trace::make_patience_instance(15, 2, 8.0, rep + 10);
  };
  const PointResult a = replicate(4, factory, SchedulerSpec::Mris());
  const PointResult b = replicate(4, factory, SchedulerSpec::Mris());
  EXPECT_DOUBLE_EQ(a.awct.mean, b.awct.mean);
  EXPECT_DOUBLE_EQ(a.awct.half_width, b.awct.half_width);
}

TEST(ReplicateLineupTest, MatchesIndividualReplicates) {
  auto factory = [](std::size_t rep) {
    return trace::make_patience_instance(15, 2, 8.0, rep + 3);
  };
  const auto lineup = std::vector<SchedulerSpec>{
      SchedulerSpec::Pq(Heuristic::kWsjf), SchedulerSpec::Tetris()};
  const auto combined = replicate_lineup(4, factory, lineup);
  ASSERT_EQ(combined.size(), 2u);
  const PointResult solo = replicate(4, factory, lineup[0]);
  EXPECT_DOUBLE_EQ(combined[0].awct.mean, solo.awct.mean);
}

TEST(AsciiTest, FormatNum) {
  EXPECT_EQ(format_num(0.0), "0");
  EXPECT_EQ(format_num(3.5), "3.5");
  EXPECT_EQ(format_num(1234567.0), "1.23e+06");
}

TEST(AsciiTest, RenderPlotContainsSeriesAndLegend) {
  Series s1{"alpha", {1, 2, 3}, {10, 20, 30}, {}};
  Series s2{"beta", {1, 2, 3}, {30, 20, 10}, {}};
  PlotOptions opts;
  opts.title = "demo";
  const std::string out = render_plot({s1, s2}, opts);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiTest, RenderPlotHandlesEmptyInput) {
  const std::string out = render_plot({}, PlotOptions{});
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiTest, RenderPlotLogScales) {
  Series s{"wide", {1, 10, 100, 1000}, {1, 10, 100, 1000}, {}};
  PlotOptions opts;
  opts.log_x = true;
  opts.log_y = true;
  opts.ylabel = "v";
  const std::string out = render_plot({s}, opts);
  EXPECT_NE(out.find("log scale"), std::string::npos);
}

TEST(AsciiTest, RenderTableAlignsColumns) {
  const std::string out = render_table({{"name", "value"},
                                        {"a", "1"},
                                        {"longer-name", "2"}});
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(AsciiTest, RenderUsageStripShadesByLoad) {
  std::vector<UsageSample> samples = {{0.0, 1.0}, {5.0, 0.0}};
  const std::string out = render_usage_strip(samples, 10.0, "machine 0", 10);
  EXPECT_NE(out.find("machine 0"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // full usage shading
}

TEST(AsciiTest, FormatCi) {
  util::MeanCi ci;
  ci.mean = 10.0;
  ci.half_width = 0.5;
  EXPECT_EQ(format_ci(ci), "10 ±0.5");
}

TEST(AsciiTest, WriteSeriesCsvRoundTrips) {
  const std::string path = ::testing::TempDir() + "/mris_series_test.csv";
  Series s{"pq", {1, 2}, {3, 4}, {0.1, 0.2}};
  ASSERT_TRUE(write_series_csv(path, {s}));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "series,x,y,ci95_half_width");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "pq,1,3,0.1");
  std::remove(path.c_str());
}

TEST(AsciiTest, WriteSeriesCsvFailsGracefully) {
  EXPECT_FALSE(write_series_csv("/nonexistent/dir/file.csv", {}));
}

}  // namespace
}  // namespace mris::exp
