#include "exp/gantt.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "trace/generator.hpp"

namespace mris::exp {
namespace {

TEST(GanttTest, EmptySchedule) {
  const Instance inst = InstanceBuilder(1, 1).build();
  const std::string out = render_gantt(inst, Schedule(0));
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(GanttTest, SingleJobBarSpansItsWindow) {
  const Instance inst =
      InstanceBuilder(1, 1).add(0.0, 10.0, 1.0, {0.5}).build();
  Schedule s(1);
  s.assign(0, 0, 0.0);
  const std::string out = render_gantt(inst, s);
  EXPECT_NE(out.find("machine 0"), std::string::npos);
  EXPECT_NE(out.find('['), std::string::npos);
  EXPECT_NE(out.find(']'), std::string::npos);
  EXPECT_NE(out.find('0'), std::string::npos);  // job id label
}

TEST(GanttTest, ConcurrentJobsGetSeparateLanes) {
  const Instance inst = InstanceBuilder(1, 1)
                            .add(0.0, 10.0, 1.0, {0.5})
                            .add(0.0, 10.0, 1.0, {0.5})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 0.0);
  const std::string out = render_gantt(inst, s);
  // Two lane rows for machine 0.
  std::size_t lanes = 0;
  for (std::size_t pos = out.find("  |"); pos != std::string::npos;
       pos = out.find("  |", pos + 1)) {
    ++lanes;
  }
  EXPECT_EQ(lanes, 2u);
}

TEST(GanttTest, SequentialJobsShareOneLane) {
  const Instance inst = InstanceBuilder(1, 1)
                            .add(0.0, 5.0, 1.0, {0.5})
                            .add(0.0, 5.0, 1.0, {0.5})
                            .build();
  Schedule s(2);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 5.0);  // back to back
  const std::string out = render_gantt(inst, s);
  std::size_t lanes = 0;
  for (std::size_t pos = out.find("  |"); pos != std::string::npos;
       pos = out.find("  |", pos + 1)) {
    ++lanes;
  }
  EXPECT_EQ(lanes, 1u);
}

TEST(GanttTest, MachinesListedSeparately) {
  const Instance inst = InstanceBuilder(3, 1)
                            .add(0.0, 2.0, 1.0, {0.5})
                            .build();
  Schedule s(1);
  s.assign(0, 1, 0.0);
  const std::string out = render_gantt(inst, s);
  EXPECT_NE(out.find("machine 0 (0 jobs)"), std::string::npos);
  EXPECT_NE(out.find("machine 1 (1 jobs)"), std::string::npos);
  EXPECT_NE(out.find("machine 2 (0 jobs)"), std::string::npos);
}

TEST(GanttTest, LaneCapElidesOverflow) {
  InstanceBuilder b(1, 1);
  for (int i = 0; i < 30; ++i) b.add(0.0, 10.0, 1.0, {0.01});
  const Instance inst = b.build();
  Schedule s(30);
  for (JobId j = 0; j < 30; ++j) s.assign(j, 0, 0.0);
  GanttOptions opts;
  opts.max_lanes = 4;
  const std::string out = render_gantt(inst, s, opts);
  std::size_t lanes = 0;
  for (std::size_t pos = out.find("  |"); pos != std::string::npos;
       pos = out.find("  |", pos + 1)) {
    ++lanes;
  }
  EXPECT_EQ(lanes, 4u);
}

TEST(GanttTest, RendersRealScheduleWithoutChoking) {
  const Instance inst = trace::make_patience_instance(40, 2, 10.0, 3);
  Schedule sched;
  evaluate_with_schedule(inst, SchedulerSpec::Mris(), sched);
  const std::string out = render_gantt(inst, sched);
  EXPECT_GT(out.size(), 100u);
  EXPECT_NE(out.find("time 0 .."), std::string::npos);
}

}  // namespace
}  // namespace mris::exp
