// Empirical competitive-ratio checks against the exact offline oracle on
// tiny random instances: MRIS must stay within its proven 8R(1+eps) bound
// for both AWCT (Theorem 6.8) and makespan (Lemma 6.9).  PQ, by Lemma 4.1,
// must exceed any constant ratio on the adversarial family.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "exp/runner.hpp"
#include "sched/optimal.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace mris {
namespace {

Instance tiny_random_instance(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const int machines = 1 + static_cast<int>(util::uniform_index(rng, 2));
  const int resources = 1 + static_cast<int>(util::uniform_index(rng, 3));
  const std::size_t n = 3 + util::uniform_index(rng, 3);  // 3..5 jobs
  InstanceBuilder b(machines, resources);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> d(static_cast<std::size_t>(resources));
    for (double& x : d) x = util::uniform(rng, 0.1, 1.0);
    b.add(util::uniform(rng, 0.0, 4.0), util::uniform(rng, 1.0, 4.0),
          util::uniform(rng, 0.5, 2.0), std::move(d));
  }
  return b.build();
}

class MrisCompetitive : public ::testing::TestWithParam<int> {};

TEST_P(MrisCompetitive, AwctWithinTheoremBound) {
  const Instance inst =
      tiny_random_instance(static_cast<std::uint64_t>(GetParam()) * 2654435761);
  const double eps = 0.5;

  exp::SchedulerSpec spec = exp::SchedulerSpec::Mris();
  spec.mris.eps = eps;
  const exp::EvalResult alg = exp::evaluate(inst, spec);

  const Schedule opt = optimal_weighted_completion_schedule(inst);
  ASSERT_TRUE(validate_schedule(inst, opt).ok);
  const double opt_twct = total_weighted_completion_time(inst, opt);

  const double bound =
      8.0 * inst.num_resources() * (1.0 + eps);
  EXPECT_LE(alg.twct, bound * opt_twct + 1e-6)
      << "Theorem 6.8 violated on seed " << GetParam();
}

TEST_P(MrisCompetitive, MakespanWithinLemmaBound) {
  const Instance inst =
      tiny_random_instance(static_cast<std::uint64_t>(GetParam()) * 40503);
  const double eps = 0.5;

  exp::SchedulerSpec spec = exp::SchedulerSpec::Mris();
  spec.mris.eps = eps;
  Schedule sched;
  exp::evaluate_with_schedule(inst, spec, sched);

  const Schedule opt = optimal_makespan_schedule(inst);
  const double bound = 8.0 * inst.num_resources() * (1.0 + eps);
  EXPECT_LE(makespan(inst, sched), bound * makespan(inst, opt) + 1e-6)
      << "Lemma 6.9 violated on seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TinyRandomInstances, MrisCompetitive,
                         ::testing::Range(1, 30));

class GreedyBackendCompetitive : public ::testing::TestWithParam<int> {};

TEST_P(GreedyBackendCompetitive, AwctWithinGreedyBound) {
  // With the greedy backend the per-interval capacity factor becomes 2
  // instead of (1 + eps): the ratio certificate is 8R * 2 / (1 + eps)
  // relative to CADP's — conservatively we check against 16R.
  const Instance inst =
      tiny_random_instance(static_cast<std::uint64_t>(GetParam()) * 7577);
  exp::SchedulerSpec spec =
      exp::SchedulerSpec::Mris(Heuristic::kWsjf,
                               knapsack::Backend::kGreedyConstraint);
  const exp::EvalResult alg = exp::evaluate(inst, spec);
  const Schedule opt = optimal_weighted_completion_schedule(inst);
  const double bound = 16.0 * inst.num_resources();
  EXPECT_LE(alg.twct,
            bound * total_weighted_completion_time(inst, opt) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(TinyRandomInstances, GreedyBackendCompetitive,
                         ::testing::Range(1, 15));

TEST(PqNonCompetitiveTest, RatioScalesLinearlyOnAdversarialFamily) {
  // Lemma 4.1: ALG/OPT grows ~ N/8 on the family with p = N.  Verify the
  // ratio roughly doubles as N doubles.
  double prev_ratio = 0.0;
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const Instance inst = trace::make_lemma41_instance(n, 2);
    const exp::EvalResult pq =
        exp::evaluate(inst, exp::SchedulerSpec::Pq(Heuristic::kSjf));
    // Optimal certificate: run small jobs first, blocker last.
    Schedule opt(inst.num_jobs());
    for (JobId j = 1; j < static_cast<JobId>(n); ++j) {
      opt.assign(j, 0, inst.job(j).release);
    }
    opt.assign(0, 0, inst.job(1).release + 1.0);
    ASSERT_TRUE(validate_schedule(inst, opt).ok);
    const double ratio =
        pq.twct / total_weighted_completion_time(inst, opt);
    EXPECT_GT(ratio, prev_ratio * 1.5)
        << "ratio must keep growing with N (Omega(N))";
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 8.0);
}

TEST(MrisVsPqTest, MrisUnaffectedByAdversarialFamily) {
  // MRIS's ratio on the Lemma 4.1 family stays bounded as N grows.
  for (std::size_t n : {16u, 64u, 256u}) {
    const Instance inst = trace::make_lemma41_instance(n, 2);
    const exp::EvalResult mris =
        exp::evaluate(inst, exp::SchedulerSpec::Mris());
    Schedule opt(inst.num_jobs());
    for (JobId j = 1; j < static_cast<JobId>(n); ++j) {
      opt.assign(j, 0, inst.job(j).release);
    }
    opt.assign(0, 0, inst.job(1).release + 1.0);
    const double ratio =
        mris.twct / total_weighted_completion_time(inst, opt);
    EXPECT_LT(ratio, 8.0 * 2 * (1.0 + 0.5))
        << "MRIS ratio must stay within the theorem bound, n=" << n;
  }
}

}  // namespace
}  // namespace mris
