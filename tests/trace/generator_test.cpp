#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/metrics.hpp"

namespace mris::trace {
namespace {

GeneratorConfig small_config(std::size_t n = 2000, std::uint64_t seed = 7) {
  GeneratorConfig c;
  c.num_jobs = n;
  c.seed = seed;
  return c;
}

TEST(CatalogTest, DeterministicAndWithinBounds) {
  const auto a = make_vm_type_catalog(25, 3);
  const auto b = make_vm_type_catalog(25, 3);
  ASSERT_EQ(a.size(), 25u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cpu, b[i].cpu);
    EXPECT_GT(a[i].cpu, 0.0);
    EXPECT_LE(a[i].cpu, 1.0);
    EXPECT_LE(a[i].memory, 1.0);
    EXPECT_LE(a[i].network, 1.0);
    // Storage exclusivity.
    EXPECT_TRUE(a[i].hdd == 0.0 || a[i].ssd == 0.0);
    EXPECT_GT(a[i].hdd + a[i].ssd, 0.0);
  }
}

TEST(CatalogTest, SizeMixIsContentionHeavy) {
  const auto catalog = make_vm_type_catalog(500, 11);
  const auto sub_quarter = static_cast<std::size_t>(
      std::count_if(catalog.begin(), catalog.end(),
                    [](const VmType& t) { return t.cpu <= 0.25; }));
  const auto full = static_cast<std::size_t>(
      std::count_if(catalog.begin(), catalog.end(),
                    [](const VmType& t) { return t.cpu == 1.0; }));
  // Most types are quarter-machine or smaller, but a near-machine tail
  // exists (it drives the fragmentation the schedulers must handle).
  EXPECT_GT(sub_quarter, catalog.size() / 2);
  EXPECT_GT(full, 0u);
  EXPECT_LT(full, catalog.size() / 4);
}

TEST(GeneratorTest, ProducesRequestedJobCount) {
  const Workload w = generate_azure_like(small_config());
  EXPECT_EQ(w.jobs.size(), 2000u);
  EXPECT_EQ(w.num_resources(), 5u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const Workload a = generate_azure_like(small_config(500, 13));
  const Workload b = generate_azure_like(small_config(500, 13));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].release, b.jobs[i].release);
    EXPECT_DOUBLE_EQ(a.jobs[i].duration, b.jobs[i].duration);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Workload a = generate_azure_like(small_config(500, 1));
  const Workload b = generate_azure_like(small_config(500, 2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    any_diff |= (a.jobs[i].duration != b.jobs[i].duration);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ArrivalsSortedWithinWindow) {
  const Workload w = generate_azure_like(small_config());
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    EXPECT_GE(w.jobs[i].release, 0.0);
    EXPECT_LE(w.jobs[i].release, 12.5 * 86400.0);
    if (i > 0) {
      EXPECT_GE(w.jobs[i].release, w.jobs[i - 1].release);
    }
  }
}

TEST(GeneratorTest, DurationsClippedToConfiguredRange) {
  const Workload w = generate_azure_like(small_config(5000, 17));
  double lo = 1e18, hi = 0.0;
  for (const TraceJob& j : w.jobs) {
    lo = std::min(lo, j.duration);
    hi = std::max(hi, j.duration);
  }
  EXPECT_GE(lo, 30.0);
  EXPECT_LE(hi, 90.0 * 86400.0);
  // The distribution must actually span several orders of magnitude.
  EXPECT_GT(hi / lo, 1e3);
}

TEST(GeneratorTest, WeightsArePositiveSmallIntegers) {
  const Workload w = generate_azure_like(small_config());
  std::size_t heavy = 0;
  for (const TraceJob& j : w.jobs) {
    EXPECT_GE(j.weight, 1.0);
    EXPECT_LE(j.weight, 3.0);
    EXPECT_DOUBLE_EQ(j.weight, std::floor(j.weight));
    if (j.weight > 1.0) ++heavy;
  }
  // Skewed: weight-1 jobs dominate but heavier ones exist.
  EXPECT_GT(heavy, 0u);
  EXPECT_LT(heavy, w.jobs.size() / 2);
}

TEST(GeneratorTest, DemandsRespectStorageExclusivity) {
  const Workload w = generate_azure_like(small_config());
  for (const TraceJob& j : w.jobs) {
    EXPECT_TRUE(j.demand[kHdd] == 0.0 || j.demand[kSsd] == 0.0);
    for (double d : j.demand) {
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(GeneratorTest, FullPipelineYieldsValidInstance) {
  const Workload w = generate_azure_like(small_config(300, 23));
  const Instance inst = to_instance(merge_storage(w), 20);
  EXPECT_EQ(inst.num_resources(), 4);
  EXPECT_EQ(inst.num_jobs(), 300u);
  EXPECT_TRUE(inst.check_invariants().empty());
  // Normalized processing times.
  double min_p = 1e18;
  for (const Job& j : inst.jobs()) min_p = std::min(min_p, j.processing);
  EXPECT_DOUBLE_EQ(min_p, 1.0);
}

TEST(GeneratorTest, EmptyConfigYieldsEmptyWorkload) {
  const Workload w = generate_azure_like(small_config(0));
  EXPECT_TRUE(w.jobs.empty());
  EXPECT_EQ(w.num_resources(), 5u);
}

TEST(PatienceInstanceTest, ShapeMatchesSection754) {
  const Instance inst = make_patience_instance(100, 4, 14.0, 5);
  ASSERT_EQ(inst.num_jobs(), 101u);
  EXPECT_EQ(inst.num_machines(), 1);
  // Blocker consumes the whole machine.
  for (double d : inst.job(0).demand) EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_DOUBLE_EQ(inst.job(0).processing, 14.0);
  double small_volume_per_resource = 0.0;
  for (JobId j = 1; j <= 100; ++j) {
    EXPECT_GT(inst.job(j).release, 0.0);
    EXPECT_LT(inst.job(j).demand[0], 0.2);  // individually small
    EXPECT_GE(inst.job(j).processing, 1.0);
    small_volume_per_resource += inst.job(j).processing * inst.job(j).demand[0];
  }
  // The small jobs' per-resource volume is sized comparable to the blocker
  // (so committing the blocker first roughly doubles their completions).
  EXPECT_GT(small_volume_per_resource, 0.5 * 14.0);
  EXPECT_LT(small_volume_per_resource, 2.0 * 14.0);
}

TEST(Lemma41InstanceTest, MatchesPaperConstruction) {
  const Instance inst = make_lemma41_instance(10, 3, 0.5);
  ASSERT_EQ(inst.num_jobs(), 10u);
  EXPECT_DOUBLE_EQ(inst.job(0).processing, 10.0);
  EXPECT_DOUBLE_EQ(inst.job(0).release, 0.0);
  for (JobId j = 1; j < 10; ++j) {
    EXPECT_DOUBLE_EQ(inst.job(j).release, 0.5);
    EXPECT_DOUBLE_EQ(inst.job(j).processing, 1.0);
    EXPECT_DOUBLE_EQ(inst.job(j).demand[0], 1.0 / 9.0);
  }
  EXPECT_THROW(make_lemma41_instance(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mris::trace
