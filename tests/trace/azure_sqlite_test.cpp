#include "trace/azure_sqlite.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#ifdef MRIS_HAVE_SQLITE
#include <sqlite3.h>
#endif

namespace mris::trace {
namespace {

#ifdef MRIS_HAVE_SQLITE

/// Builds a miniature packing-trace database mirroring the published
/// schema, returning its path.  The path embeds the running test's name:
/// ctest runs each case as its own process in parallel, so a shared path
/// would race.
std::string make_test_db() {
  const std::string path =
      ::testing::TempDir() + "/mris_azure_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".sqlite";
  std::remove(path.c_str());
  sqlite3* db = nullptr;
  EXPECT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  const char* schema =
      "CREATE TABLE vmType (vmTypeId TEXT, machineId INTEGER, core REAL,"
      " memory REAL, hdd REAL, ssd REAL, nic REAL);"
      "CREATE TABLE vm (vmId INTEGER, tenantId INTEGER, vmTypeId TEXT,"
      " priority INTEGER, starttime REAL, endtime REAL);"
      "INSERT INTO vmType VALUES ('small', 0, 0.125, 0.1, 0.05, 0, 0.02);"
      "INSERT INTO vmType VALUES ('big', 0, 0.5, 0.6, 0, 0.4, 0.25);"
      "INSERT INTO vm VALUES (1, 10, 'small', 0, 0.0, 1.0);"
      "INSERT INTO vm VALUES (2, 10, 'big', 1, 0.5, 2.5);"
      "INSERT INTO vm VALUES (3, 11, 'big', 2, 1.0, NULL);";
  char* err = nullptr;
  EXPECT_EQ(sqlite3_exec(db, schema, nullptr, nullptr, &err), SQLITE_OK)
      << (err != nullptr ? err : "");
  sqlite3_close(db);
  return path;
}

TEST(AzureSqliteTest, SupportIsCompiledIn) {
  EXPECT_TRUE(azure_sqlite_supported());
}

TEST(AzureSqliteTest, LoadsRowsWithCsvSemantics) {
  const std::string path = make_test_db();
  const Workload w = load_azure_trace_sqlite(path);
  ASSERT_EQ(w.jobs.size(), 3u);
  EXPECT_EQ(w.num_resources(), 5u);
  // Days -> seconds, demands from the sampled vm type.
  EXPECT_DOUBLE_EQ(w.jobs[0].duration, 86400.0);
  EXPECT_DOUBLE_EQ(w.jobs[0].demand[0], 0.125);
  EXPECT_DOUBLE_EQ(w.jobs[1].demand[3], 0.4);
  // Priorities shifted to positive weights.
  EXPECT_DOUBLE_EQ(w.jobs[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(w.jobs[2].weight, 3.0);
  // Tenants densely renumbered.
  EXPECT_EQ(w.jobs[0].tenant, w.jobs[1].tenant);
  EXPECT_NE(w.jobs[0].tenant, w.jobs[2].tenant);
}

TEST(AzureSqliteTest, NullEndtimeGetsOpenEndDuration) {
  const std::string path = make_test_db();
  AzureLoadOptions opts;
  opts.open_end_duration_days = 5.0;
  const Workload w = load_azure_trace_sqlite(path, opts);
  EXPECT_DOUBLE_EQ(w.jobs[2].duration, 5.0 * 86400.0);
}

TEST(AzureSqliteTest, MaxJobsCapsRows) {
  const std::string path = make_test_db();
  AzureLoadOptions opts;
  opts.max_jobs = 2;
  const Workload w = load_azure_trace_sqlite(path, opts);
  EXPECT_EQ(w.jobs.size(), 2u);
}

TEST(AzureSqliteTest, MissingFileThrows) {
  EXPECT_THROW(load_azure_trace_sqlite("/no/such/file.sqlite"),
               std::runtime_error);
}

TEST(AzureSqliteTest, MissingTableThrows) {
  const std::string path = ::testing::TempDir() + "/mris_empty.sqlite";
  std::remove(path.c_str());
  sqlite3* db = nullptr;
  ASSERT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  sqlite3_exec(db, "CREATE TABLE unrelated (x INTEGER);", nullptr, nullptr,
               nullptr);
  sqlite3_close(db);
  EXPECT_THROW(load_azure_trace_sqlite(path), std::runtime_error);
  std::remove(path.c_str());
}

#else

TEST(AzureSqliteTest, GracefulWithoutSupport) {
  EXPECT_FALSE(azure_sqlite_supported());
  EXPECT_THROW(load_azure_trace_sqlite("any.sqlite"), std::runtime_error);
}

#endif  // MRIS_HAVE_SQLITE

}  // namespace
}  // namespace mris::trace
