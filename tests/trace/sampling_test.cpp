#include "trace/sampling.hpp"

#include <gtest/gtest.h>

#include <set>

#include "trace/generator.hpp"

namespace mris::trace {
namespace {

Workload sequential_workload(std::size_t n) {
  Workload w;
  w.resource_names = {"cpu"};
  for (std::size_t i = 0; i < n; ++i) {
    w.jobs.push_back({static_cast<double>(i), 1.0, 1.0, {0.5}});
  }
  return w;
}

TEST(DownsampleTest, EveryFthJobKept) {
  const Workload w = sequential_workload(100);
  const Workload s = downsample(w, 10, 0);
  ASSERT_EQ(s.jobs.size(), 10u);
  for (std::size_t i = 0; i < s.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.jobs[i].release, static_cast<double>(i * 10));
  }
}

TEST(DownsampleTest, OffsetShiftsSelection) {
  const Workload w = sequential_workload(100);
  const Workload s = downsample(w, 10, 3);
  ASSERT_EQ(s.jobs.size(), 10u);
  EXPECT_DOUBLE_EQ(s.jobs[0].release, 3.0);
  EXPECT_DOUBLE_EQ(s.jobs.back().release, 93.0);
}

TEST(DownsampleTest, SortsByReleaseBeforeSampling) {
  Workload w;
  w.resource_names = {"cpu"};
  // Unsorted input with identifiable durations.
  w.jobs = {
      {5.0, 50.0, 1.0, {0.5}},
      {1.0, 10.0, 1.0, {0.5}},
      {3.0, 30.0, 1.0, {0.5}},
      {2.0, 20.0, 1.0, {0.5}},
  };
  const Workload s = downsample(w, 2, 0);
  ASSERT_EQ(s.jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(s.jobs[0].duration, 10.0);  // release 1
  EXPECT_DOUBLE_EQ(s.jobs[1].duration, 30.0);  // release 3
}

TEST(DownsampleTest, PreservesReleaseWindow) {
  // The point of the paper's scheme: fewer jobs over the SAME window.
  const Workload w = sequential_workload(1000);
  const Workload s = downsample(w, 100, 50);
  EXPECT_GE(s.jobs.back().release, 900.0);
}

TEST(DownsampleTest, FactorOneIsIdentity) {
  const Workload w = sequential_workload(10);
  const Workload s = downsample(w, 1, 0);
  EXPECT_EQ(s.jobs.size(), 10u);
}

TEST(DownsampleTest, InvalidArgumentsThrow) {
  const Workload w = sequential_workload(10);
  EXPECT_THROW(downsample(w, 0, 0), std::invalid_argument);
  EXPECT_THROW(downsample(w, 5, 5), std::invalid_argument);
}

TEST(SampleOffsetsTest, DistinctAndInRange) {
  util::Xoshiro256 rng(9);
  const auto offsets = sample_offsets(64, 10, rng);
  ASSERT_EQ(offsets.size(), 10u);
  std::set<std::size_t> unique(offsets.begin(), offsets.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t o : offsets) EXPECT_LT(o, 64u);
}

TEST(SampleOffsetsTest, FullDrawIsPermutation) {
  util::Xoshiro256 rng(10);
  const auto offsets = sample_offsets(8, 8, rng);
  std::set<std::size_t> unique(offsets.begin(), offsets.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SampleOffsetsTest, OverdrawThrows) {
  util::Xoshiro256 rng(11);
  EXPECT_THROW(sample_offsets(5, 6, rng), std::invalid_argument);
}

TEST(AugmentTest, AddsRequestedResources) {
  util::Xoshiro256 rng(12);
  Workload w = sequential_workload(50);
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    w.jobs[i].demand[0] = 0.01 * static_cast<double>(i + 1);
  }
  const Workload aug = augment_resources(w, 4, /*cpu_resource=*/0, rng);
  ASSERT_EQ(aug.num_resources(), 4u);
  ASSERT_EQ(aug.jobs[0].demand.size(), 4u);
  EXPECT_EQ(aug.resource_names[1], "synth1");
}

TEST(AugmentTest, NewDemandsDrawnFromCpuMarginal) {
  util::Xoshiro256 rng(13);
  Workload w = sequential_workload(200);
  std::set<double> cpu_values;
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    w.jobs[i].demand[0] = 0.001 * static_cast<double>(i + 1);
    cpu_values.insert(w.jobs[i].demand[0]);
  }
  const Workload aug = augment_resources(w, 3, 0, rng);
  for (const TraceJob& j : aug.jobs) {
    EXPECT_TRUE(cpu_values.count(j.demand[1]))
        << "augmented demand must equal some job's CPU demand";
    EXPECT_TRUE(cpu_values.count(j.demand[2]));
  }
}

TEST(AugmentTest, OriginalResourcesUntouched) {
  util::Xoshiro256 rng(14);
  const Workload w = generate_azure_like([] {
    GeneratorConfig c;
    c.num_jobs = 100;
    c.seed = 5;
    return c;
  }());
  const Workload aug = augment_resources(w, 8, kCpu, rng);
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    for (std::size_t l = 0; l < 5; ++l) {
      EXPECT_DOUBLE_EQ(aug.jobs[i].demand[l], w.jobs[i].demand[l]);
    }
  }
}

TEST(AugmentTest, TargetBelowCurrentThrows) {
  util::Xoshiro256 rng(15);
  const Workload w = sequential_workload(5);
  EXPECT_THROW(augment_resources(w, 0, 0, rng), std::invalid_argument);
}

TEST(AugmentTest, SameTargetIsNoop) {
  util::Xoshiro256 rng(16);
  const Workload w = sequential_workload(5);
  const Workload aug = augment_resources(w, 1, 0, rng);
  EXPECT_EQ(aug.num_resources(), 1u);
}

TEST(AugmentTest, BadCpuIndexThrows) {
  util::Xoshiro256 rng(17);
  const Workload w = sequential_workload(5);
  EXPECT_THROW(augment_resources(w, 3, 7, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mris::trace
