#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace mris::trace {
namespace {

TEST(WorkloadIoTest, RoundTripIsExact) {
  GeneratorConfig cfg;
  cfg.num_jobs = 200;
  cfg.seed = 4;
  const Workload original = generate_azure_like(cfg);

  std::stringstream buffer;
  write_workload_csv(buffer, original);
  const Workload loaded = read_workload_csv(buffer);

  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  EXPECT_EQ(loaded.resource_names, original.resource_names);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_EQ(loaded.jobs[i].release, original.jobs[i].release);
    EXPECT_EQ(loaded.jobs[i].duration, original.jobs[i].duration);
    EXPECT_EQ(loaded.jobs[i].weight, original.jobs[i].weight);
    EXPECT_EQ(loaded.jobs[i].tenant, original.jobs[i].tenant);
    EXPECT_EQ(loaded.jobs[i].demand, original.jobs[i].demand);
  }
}

TEST(WorkloadIoTest, HeaderCarriesResourceNames) {
  Workload w;
  w.resource_names = {"cpu", "gpu"};
  w.jobs = {{1.0, 2.0, 3.0, {0.5, 0.25}, 7}};
  std::stringstream buffer;
  write_workload_csv(buffer, w);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "release,duration,weight,tenant,cpu,gpu");
}

TEST(WorkloadIoTest, RejectsWrongHeader) {
  std::istringstream in("a,b,c\n1,2,3\n");
  EXPECT_THROW(read_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsRowWidthMismatch) {
  std::istringstream in(
      "release,duration,weight,tenant,cpu\n"
      "1,2,3,0\n");
  EXPECT_THROW(read_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsNonNumericField) {
  std::istringstream in(
      "release,duration,weight,tenant,cpu\n"
      "1,two,3,0,0.5\n");
  EXPECT_THROW(read_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIoTest, NonNumericErrorNamesLineAndField) {
  std::istringstream in(
      "release,duration,weight,tenant,cpu\n"
      "1,2,3,0,0.5\n"
      "\n"
      "4,oops,6,0,0.25\n");
  try {
    read_workload_csv(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    // The bad row sits on physical line 4 (a blank line precedes it).
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duration"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'oops'"), std::string::npos) << msg;
  }
}

TEST(WorkloadIoTest, TruncatedFileErrorNamesLineAndWidth) {
  // A file cut off mid-row: the final record has too few fields.
  std::istringstream in(
      "release,duration,weight,tenant,cpu\n"
      "1,2,3,0,0.5\n"
      "4,5,6\n");
  try {
    read_workload_csv(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 5 fields, got 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'4'"), std::string::npos) << msg;
  }
}

TEST(WorkloadIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mris_io_test.csv";
  Workload w;
  w.resource_names = {"cpu"};
  w.jobs = {{0.5, 1.5, 2.0, {0.125}, 3}};
  write_workload_csv_file(path, w);
  const Workload loaded = read_workload_csv_file(path);
  ASSERT_EQ(loaded.jobs.size(), 1u);
  EXPECT_EQ(loaded.jobs[0].demand[0], 0.125);
  EXPECT_EQ(loaded.jobs[0].tenant, 3);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, MissingFileThrows) {
  EXPECT_THROW(read_workload_csv_file("/no/such/file.csv"),
               std::runtime_error);
  Workload w;
  w.resource_names = {"cpu"};
  EXPECT_THROW(write_workload_csv_file("/no/such/dir/file.csv", w),
               std::runtime_error);
}

}  // namespace
}  // namespace mris::trace
