#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace mris::trace {
namespace {

TEST(WorkloadIoTest, RoundTripIsExact) {
  GeneratorConfig cfg;
  cfg.num_jobs = 200;
  cfg.seed = 4;
  const Workload original = generate_azure_like(cfg);

  std::stringstream buffer;
  write_workload_csv(buffer, original);
  const Workload loaded = read_workload_csv(buffer);

  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  EXPECT_EQ(loaded.resource_names, original.resource_names);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_EQ(loaded.jobs[i].release, original.jobs[i].release);
    EXPECT_EQ(loaded.jobs[i].duration, original.jobs[i].duration);
    EXPECT_EQ(loaded.jobs[i].weight, original.jobs[i].weight);
    EXPECT_EQ(loaded.jobs[i].tenant, original.jobs[i].tenant);
    EXPECT_EQ(loaded.jobs[i].demand, original.jobs[i].demand);
  }
}

TEST(WorkloadIoTest, HeaderCarriesResourceNames) {
  Workload w;
  w.resource_names = {"cpu", "gpu"};
  w.jobs = {{1.0, 2.0, 3.0, {0.5, 0.25}, 7}};
  std::stringstream buffer;
  write_workload_csv(buffer, w);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "release,duration,weight,tenant,cpu,gpu");
}

TEST(WorkloadIoTest, RejectsWrongHeader) {
  std::istringstream in("a,b,c\n1,2,3\n");
  EXPECT_THROW(read_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsRowWidthMismatch) {
  std::istringstream in(
      "release,duration,weight,tenant,cpu\n"
      "1,2,3,0\n");
  EXPECT_THROW(read_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsNonNumericField) {
  std::istringstream in(
      "release,duration,weight,tenant,cpu\n"
      "1,two,3,0,0.5\n");
  EXPECT_THROW(read_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mris_io_test.csv";
  Workload w;
  w.resource_names = {"cpu"};
  w.jobs = {{0.5, 1.5, 2.0, {0.125}, 3}};
  write_workload_csv_file(path, w);
  const Workload loaded = read_workload_csv_file(path);
  ASSERT_EQ(loaded.jobs.size(), 1u);
  EXPECT_EQ(loaded.jobs[0].demand[0], 0.125);
  EXPECT_EQ(loaded.jobs[0].tenant, 3);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, MissingFileThrows) {
  EXPECT_THROW(read_workload_csv_file("/no/such/file.csv"),
               std::runtime_error);
  Workload w;
  w.resource_names = {"cpu"};
  EXPECT_THROW(write_workload_csv_file("/no/such/dir/file.csv", w),
               std::runtime_error);
}

}  // namespace
}  // namespace mris::trace
