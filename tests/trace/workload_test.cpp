#include "trace/workload.hpp"

#include <gtest/gtest.h>

namespace mris::trace {
namespace {

Workload small_workload() {
  Workload w;
  w.resource_names = {"cpu", "memory", "hdd", "ssd", "network"};
  w.jobs = {
      {0.0, 100.0, 2.0, {0.5, 0.4, 0.3, 0.0, 0.1}},
      {10.0, 50.0, 1.0, {0.25, 0.2, 0.0, 0.6, 0.05}},
  };
  return w;
}

TEST(MergeStorageTest, CombinesHddAndSsd) {
  const Workload merged = merge_storage(small_workload());
  ASSERT_EQ(merged.num_resources(), 4u);
  EXPECT_EQ(merged.resource_names[2], "storage");
  EXPECT_DOUBLE_EQ(merged.jobs[0].demand[2], 0.3);  // hdd user
  EXPECT_DOUBLE_EQ(merged.jobs[1].demand[2], 0.6);  // ssd user
  // Other resources untouched.
  EXPECT_DOUBLE_EQ(merged.jobs[0].demand[0], 0.5);
  EXPECT_DOUBLE_EQ(merged.jobs[1].demand[3], 0.05);
}

TEST(MergeStorageTest, ClampsPathologicalDoubleUsers) {
  Workload w = small_workload();
  w.jobs[0].demand = {0.1, 0.1, 0.8, 0.9, 0.1};  // malformed: both storages
  const Workload merged = merge_storage(w);
  EXPECT_DOUBLE_EQ(merged.jobs[0].demand[2], 1.0);
}

TEST(MergeStorageTest, ThrowsWithoutStorageColumns) {
  Workload w;
  w.resource_names = {"cpu"};
  EXPECT_THROW(merge_storage(w), std::invalid_argument);
}

TEST(ToInstanceTest, NormalizesMinProcessingToOne) {
  const Workload w = small_workload();
  const Instance inst = to_instance(w, 4);
  ASSERT_EQ(inst.num_jobs(), 2u);
  // min duration 50 -> scale 1/50.
  EXPECT_DOUBLE_EQ(inst.job(0).processing, 2.0);
  EXPECT_DOUBLE_EQ(inst.job(1).processing, 1.0);
  EXPECT_DOUBLE_EQ(inst.job(1).release, 0.2);
  EXPECT_EQ(inst.num_machines(), 4);
  EXPECT_EQ(inst.num_resources(), 5);
}

TEST(ToInstanceTest, SortsByReleaseAndRenumbers) {
  Workload w;
  w.resource_names = {"cpu"};
  w.jobs = {
      {50.0, 10.0, 1.0, {0.5}},
      {5.0, 10.0, 2.0, {0.25}},
  };
  const Instance inst = to_instance(w, 1);
  EXPECT_DOUBLE_EQ(inst.job(0).weight, 2.0);  // earlier release first
  EXPECT_EQ(inst.job(0).id, 0);
}

TEST(ToInstanceTest, DropsMalformedJobs) {
  Workload w;
  w.resource_names = {"cpu"};
  w.jobs = {
      {-1.0, 10.0, 1.0, {0.5}},   // negative release: dropped
      {0.0, 0.0, 1.0, {0.5}},     // zero duration: dropped
      {0.0, 10.0, 1.0, {0.0}},    // zero demand: dropped
      {0.0, 10.0, 1.0, {0.5}},    // kept
  };
  const Instance inst = to_instance(w, 1);
  EXPECT_EQ(inst.num_jobs(), 1u);
}

TEST(ToInstanceTest, NoNormalizeKeepsRawTimes) {
  ToInstanceOptions opts;
  opts.num_machines = 2;
  opts.normalize = false;
  const Instance inst = to_instance(small_workload(), opts);
  EXPECT_DOUBLE_EQ(inst.job(0).processing, 100.0);
  EXPECT_DOUBLE_EQ(inst.job(1).release, 10.0);
}

TEST(ToInstanceTest, EmptyWorkload) {
  Workload w;
  w.resource_names = {"cpu"};
  const Instance inst = to_instance(w, 3);
  EXPECT_EQ(inst.num_jobs(), 0u);
  EXPECT_EQ(inst.num_machines(), 3);
}

TEST(ToInstanceTest, ClampsDemandDust) {
  Workload w;
  w.resource_names = {"cpu"};
  w.jobs = {{0.0, 10.0, 1.0, {1.0 + 1e-15}}};
  const Instance inst = to_instance(w, 1);
  EXPECT_LE(inst.job(0).demand[0], 1.0);
}

}  // namespace
}  // namespace mris::trace
