#include "trace/statistics.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace mris::trace {
namespace {

Workload two_job_workload() {
  Workload w;
  w.resource_names = {"cpu", "mem"};
  w.jobs = {
      {0.0, 10.0, 1.0, {0.5, 0.2}, 0},
      {100.0, 20.0, 3.0, {0.1, 0.8}, 1},
  };
  return w;
}

TEST(StatsTest, EmptyWorkload) {
  Workload w;
  w.resource_names = {"cpu"};
  const WorkloadStats s = compute_stats(w);
  EXPECT_EQ(s.num_jobs, 0u);
  EXPECT_DOUBLE_EQ(s.total_volume, 0.0);
  EXPECT_DOUBLE_EQ(s.load_factor(4), 0.0);
}

TEST(StatsTest, BasicAggregates) {
  const WorkloadStats s = compute_stats(two_job_workload());
  EXPECT_EQ(s.num_jobs, 2u);
  EXPECT_EQ(s.num_resources, 2u);
  EXPECT_EQ(s.num_tenants, 2u);
  EXPECT_DOUBLE_EQ(s.window, 100.0);
  EXPECT_DOUBLE_EQ(s.arrival_rate, 0.02);
  EXPECT_DOUBLE_EQ(s.duration.mean, 15.0);
  EXPECT_DOUBLE_EQ(s.weight.mean, 2.0);
  ASSERT_EQ(s.mean_demand.size(), 2u);
  EXPECT_DOUBLE_EQ(s.mean_demand[0], 0.3);
  EXPECT_DOUBLE_EQ(s.mean_demand[1], 0.5);
  EXPECT_DOUBLE_EQ(s.mean_dominant_demand, (0.5 + 0.8) / 2.0);
  // volume = 10*(0.7) + 20*(0.9) = 25.
  EXPECT_DOUBLE_EQ(s.total_volume, 25.0);
}

TEST(StatsTest, LoadFactorDefinition) {
  const WorkloadStats s = compute_stats(two_job_workload());
  // V / (R * M * window) = 25 / (2 * 5 * 100).
  EXPECT_DOUBLE_EQ(s.load_factor(5), 25.0 / 1000.0);
  EXPECT_DOUBLE_EQ(s.load_factor(0), 0.0);
}

TEST(StatsTest, ArrivalHistogramCountsAll) {
  Workload w;
  w.resource_names = {"cpu"};
  for (int i = 0; i < 100; ++i) {
    w.jobs.push_back({static_cast<double>(i), 1.0, 1.0, {0.5}, 0});
  }
  const auto hist = arrival_histogram(w, 10);
  std::size_t total = 0;
  for (std::size_t c : hist) total += c;
  EXPECT_EQ(total, 100u);
  // Uniform arrivals: every bucket is populated.
  for (std::size_t c : hist) EXPECT_GT(c, 0u);
}

TEST(StatsTest, ArrivalHistogramDegenerateWindow) {
  Workload w;
  w.resource_names = {"cpu"};
  w.jobs = {{5.0, 1.0, 1.0, {0.5}, 0}, {5.0, 1.0, 1.0, {0.5}, 0}};
  const auto hist = arrival_histogram(w, 4);
  EXPECT_EQ(hist[0], 2u);
}

TEST(StatsTest, FormatMentionsKeyNumbers) {
  const std::string report = format_stats(compute_stats(two_job_workload()), 5);
  EXPECT_NE(report.find("jobs:"), std::string::npos);
  EXPECT_NE(report.find("load factor (M=5)"), std::string::npos);
  EXPECT_NE(report.find("tenants:          2"), std::string::npos);
}

TEST(StatsTest, GeneratorDefaultsAreContendedAndHeavyTailed) {
  GeneratorConfig cfg;
  cfg.num_jobs = 3000;
  cfg.seed = 8;
  const WorkloadStats s = compute_stats(generate_azure_like(cfg));
  // The documented properties the substitution relies on (DESIGN.md §3).
  EXPECT_GT(s.duration.max / s.duration.min, 1e3);   // heavy tails
  EXPECT_GT(s.mean_dominant_demand, 0.15);           // contended VM mix
  EXPECT_GT(s.load_factor(20), 0.3);                 // meaningful load
  EXPECT_EQ(s.num_tenants, 50u);
}

}  // namespace
}  // namespace mris::trace
