#include "trace/azure.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mris::trace {
namespace {

constexpr const char* kVmTypeCsv =
    "vmTypeId,machineId,core,memory,hdd,ssd,nic\n"
    "small,0,0.125,0.1,0.05,0,0.02\n"
    "big,0,0.5,0.6,0,0.4,0.25\n";

constexpr const char* kVmCsv =
    "vmId,tenantId,vmTypeId,priority,starttime,endtime\n"
    "1,10,small,0,0.0,1.0\n"
    "2,10,big,1,0.5,2.5\n"
    "3,11,small,0,-0.25,1.0\n"   // negative start: kept here, dropped later
    "4,11,big,2,1.0,\n";         // open-ended VM

TEST(AzureLoadTest, ParsesRowsAndResources) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  const Workload w = load_azure_trace(vm, vt);
  ASSERT_EQ(w.jobs.size(), 4u);
  ASSERT_EQ(w.num_resources(), 5u);
  EXPECT_EQ(w.resource_names[0], "cpu");
}

TEST(AzureLoadTest, ConvertsDaysToSeconds) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  const Workload w = load_azure_trace(vm, vt);
  EXPECT_DOUBLE_EQ(w.jobs[0].release, 0.0);
  EXPECT_DOUBLE_EQ(w.jobs[0].duration, 86400.0);
  EXPECT_DOUBLE_EQ(w.jobs[1].release, 0.5 * 86400.0);
  EXPECT_DOUBLE_EQ(w.jobs[1].duration, 2.0 * 86400.0);
}

TEST(AzureLoadTest, MapsVmTypeDemands) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  const Workload w = load_azure_trace(vm, vt);
  EXPECT_DOUBLE_EQ(w.jobs[0].demand[0], 0.125);  // small core
  EXPECT_DOUBLE_EQ(w.jobs[1].demand[3], 0.4);    // big ssd
}

TEST(AzureLoadTest, ShiftsPrioritiesToPositiveWeights) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  const Workload w = load_azure_trace(vm, vt);
  // min priority 0 -> shift +1.
  EXPECT_DOUBLE_EQ(w.jobs[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(w.jobs[1].weight, 2.0);
  EXPECT_DOUBLE_EQ(w.jobs[3].weight, 3.0);
}

TEST(AzureLoadTest, OpenEndedVmGetsConfiguredDuration) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  AzureLoadOptions opts;
  opts.open_end_duration_days = 10.0;
  const Workload w = load_azure_trace(vm, vt, opts);
  EXPECT_DOUBLE_EQ(w.jobs[3].duration, 10.0 * 86400.0);
}

TEST(AzureLoadTest, MaxJobsCapsOutput) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  AzureLoadOptions opts;
  opts.max_jobs = 2;
  const Workload w = load_azure_trace(vm, vt, opts);
  EXPECT_EQ(w.jobs.size(), 2u);
}

TEST(AzureLoadTest, UnknownVmTypeThrows) {
  std::istringstream vm(
      "vmId,tenantId,vmTypeId,priority,starttime,endtime\n"
      "1,1,ghost,0,0,1\n");
  std::istringstream vt(kVmTypeCsv);
  EXPECT_THROW(load_azure_trace(vm, vt), std::runtime_error);
}

TEST(AzureLoadTest, MissingColumnThrows) {
  std::istringstream vm("vmId,starttime\n1,0\n");
  std::istringstream vt(kVmTypeCsv);
  EXPECT_THROW(load_azure_trace(vm, vt), std::runtime_error);
}

TEST(AzureLoadTest, MalformedNumberThrows) {
  std::istringstream vm(
      "vmId,tenantId,vmTypeId,priority,starttime,endtime\n"
      "1,1,small,0,zero,1\n");
  std::istringstream vt(kVmTypeCsv);
  EXPECT_THROW(load_azure_trace(vm, vt), std::runtime_error);
}

TEST(AzureLoadTest, MultiMachineVmTypeSamplesDeterministically) {
  // Two machine candidates for one vmTypeId: the pick is seed-driven.
  constexpr const char* kMulti =
      "vmTypeId,machineId,core,memory,hdd,ssd,nic\n"
      "t,0,0.1,0.1,0.1,0,0.1\n"
      "t,1,0.9,0.9,0.9,0,0.9\n";
  constexpr const char* kOneVm =
      "vmId,tenantId,vmTypeId,priority,starttime,endtime\n"
      "1,1,t,1,0,1\n";
  AzureLoadOptions opts;
  opts.seed = 4;
  std::istringstream vm1(kOneVm), vt1(kMulti);
  const Workload a = load_azure_trace(vm1, vt1, opts);
  std::istringstream vm2(kOneVm), vt2(kMulti);
  const Workload b = load_azure_trace(vm2, vt2, opts);
  EXPECT_DOUBLE_EQ(a.jobs[0].demand[0], b.jobs[0].demand[0]);
  EXPECT_TRUE(a.jobs[0].demand[0] == 0.1 || a.jobs[0].demand[0] == 0.9);
}

TEST(AzureLoadTest, PipelineToInstanceDropsNegativeStarts) {
  std::istringstream vm(kVmCsv), vt(kVmTypeCsv);
  const Workload w = merge_storage(load_azure_trace(vm, vt));
  const Instance inst = to_instance(w, 20);
  EXPECT_EQ(inst.num_jobs(), 3u);  // the negative-start row is dropped
  EXPECT_EQ(inst.num_resources(), 4);
}

TEST(AzureLoadTest, MissingFilesThrow) {
  EXPECT_THROW(load_azure_trace_files("/no/vm.csv", "/no/vmType.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace mris::trace
