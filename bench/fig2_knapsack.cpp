// Figure 2: AWCT of MRIS with the CADP knapsack backend vs the greedy
// constraint-approximation backend (Sec 7.4), M = 20 in the paper (M = 2 at
// laptop scale, keeping the cluster loaded so the knapsack constraint can
// bind).
//
// Paper shape: MRIS-GREEDY ~2% better at N = 4000, but >3x worse at
// N = 64000.  Measured shape at laptop scale: the two backends track each
// other closely (the backlog needed to separate them grows with absolute
// N); see EXPERIMENTS.md for the full discussion.
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("fig2_knapsack", "Figure 2 (Sec 7.4)");
  const std::size_t reps = util::bench_reps();
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 2));
  const std::vector<std::size_t> n_values = {
      bench::scaled(500), bench::scaled(1000), bench::scaled(2000),
      bench::scaled(4000), bench::scaled(8000)};
  const std::size_t base_jobs = n_values.back() * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xf29u);

  const std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Mris(Heuristic::kWsjf, knapsack::Backend::kCadp),
      exp::SchedulerSpec::Mris(Heuristic::kWsjf,
                               knapsack::Backend::kGreedyConstraint),
  };

  std::vector<exp::Series> series = {{"MRIS-CADP", {}, {}, {}},
                                     {"MRIS-GREEDY", {}, {}, {}}};
  std::vector<std::vector<std::string>> table = {
      {"N", "MRIS-CADP", "MRIS-GREEDY", "greedy/cadp"}};

  for (std::size_t n : n_values) {
    const std::size_t factor = base_jobs / n;
    const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    const auto points = exp::replicate_lineup(reps, factory, lineup);

    for (std::size_t s = 0; s < lineup.size(); ++s) {
      series[s].x.push_back(static_cast<double>(n));
      series[s].y.push_back(points[s].awct.mean);
      series[s].ci.push_back(points[s].awct.half_width);
    }
    table.push_back({std::to_string(n), exp::format_ci(points[0].awct),
                     exp::format_ci(points[1].awct),
                     exp::format_num(points[1].awct.mean /
                                     points[0].awct.mean)});
  }

  exp::PlotOptions opts;
  opts.title = "Fig 2: MRIS knapsack backend comparison";
  opts.xlabel = "number of jobs N";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  bench::emit("fig2_knapsack", series, opts, table);
  return 0;
}
