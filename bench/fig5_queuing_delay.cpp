// Figure 5: CDF of per-job queuing delays (S_j - r_j) for selected
// schedulers, M = 20 / N = 64000 in the paper (M = 4 / N = 4000 scaled).
//
// Expected shape (Sec 7.5.2): TETRIS / BF-EXEC / PQ-WSJF have a large mass
// of zero-delay jobs followed by a sharp rise (premature commitment makes
// the remaining jobs wait long); MRIS's CDF rises gradually; CA-PQ is the
// worst (everything waits for the last release).
#include "bench_common.hpp"

#include "core/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace mris;

int main() {
  bench::print_header("fig5_queuing_delay", "Figure 5 (Sec 7.5.2)");
  const std::size_t n = bench::scaled(4000);
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 4));
  const std::size_t factor = 10;
  const trace::Workload base = bench::base_workload(n * factor);
  const Instance inst =
      to_instance(trace::downsample(base, factor, 0), machines);

  const std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Mris(),
      exp::SchedulerSpec::Pq(Heuristic::kWsjf),
      exp::SchedulerSpec::Tetris(),
      exp::SchedulerSpec::BfExec(),
      exp::SchedulerSpec::CaPq(),
  };

  std::vector<exp::Series> series;
  std::vector<std::vector<std::string>> table = {
      {"scheduler", "P(delay=0)", "median", "p90", "p99", "max"}};

  for (const auto& spec : lineup) {
    Schedule sched;
    exp::evaluate_with_schedule(inst, spec, sched);
    const std::vector<double> delays = queuing_delays(inst, sched);

    std::size_t zero = 0;
    for (double d : delays) {
      if (d <= 1e-9) ++zero;
    }
    table.push_back(
        {spec.display_name(),
         exp::format_num(static_cast<double>(zero) /
                         static_cast<double>(delays.size())),
         exp::format_num(util::quantile(delays, 0.5)),
         exp::format_num(util::quantile(delays, 0.9)),
         exp::format_num(util::quantile(delays, 0.99)),
         exp::format_num(util::quantile(delays, 1.0))});

    exp::Series s{spec.display_name(), {}, {}, {}};
    for (const auto& point : util::empirical_cdf(delays, 120)) {
      // Log-x plot can't show zero delays; clamp to a small positive value.
      s.x.push_back(std::max(point.value, 0.5));
      s.y.push_back(point.fraction);
    }
    series.push_back(std::move(s));
  }

  exp::PlotOptions opts;
  opts.title = "Fig 5: queuing delay CDF";
  opts.xlabel = "queuing delay (log)";
  opts.ylabel = "P(delay <= x)";
  opts.log_x = true;
  bench::emit("fig5_queuing_delay", series, opts, table);
  return 0;
}
