// Shared scaffolding for the figure-reproduction benches.
//
// Every bench is a standalone binary that prints the figure's series as a
// table plus an ASCII plot, and writes the raw numbers to
// results/results_<bench>.csv under the working directory.  Scale knobs
// (env vars):
//   MRIS_BENCH_SCALE  multiplies job counts (default 1.0)
//   MRIS_SEED         base RNG seed (default 42)
//   MRIS_REPS         replications per data point (default 10, as in the
//                     paper's Section 7.1)
//
// Scale note (DESIGN.md §3): the paper runs N up to 64000 on M = 20
// machines.  Laptop-default benches keep the same *load per machine* with
// proportionally fewer machines and jobs so that CADP's O(n^2/eps) cost
// stays interactive; MRIS_BENCH_SCALE=8 with M overrides reproduces the
// paper's absolute scale.
#pragma once

#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "exp/ascii.hpp"
#include "exp/runner.hpp"
#include "trace/generator.hpp"
#include "trace/sampling.hpp"
#include "util/env.hpp"

namespace mris::bench {

/// Scales a job count by MRIS_BENCH_SCALE.
inline std::size_t scaled(std::size_t n) {
  const double s = util::bench_scale();
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * s);
  return v > 0 ? v : 1;
}

/// Generates the bench's base workload (paper-like defaults: 12.5-day
/// window, heavy-tailed durations, contended VM mix), merged to 4 resources.
inline trace::Workload base_workload(std::size_t base_jobs,
                                     std::uint64_t seed_offset = 0) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = base_jobs;
  cfg.seed = util::bench_seed() + seed_offset;
  return merge_storage(trace::generate_azure_like(cfg));
}

/// Instance factory for one (N, machines) data point: replication `rep`
/// downsamples the base workload with a distinct offset, as in Sec 7.1.
/// `offsets` must come from trace::sample_offsets(factor, reps, ...).
inline std::function<Instance(std::size_t)> downsample_factory(
    const trace::Workload& base, std::size_t factor,
    std::vector<std::size_t> offsets, int machines) {
  return [&base, factor, offsets = std::move(offsets),
          machines](std::size_t rep) {
    return to_instance(trace::downsample(base, factor, offsets.at(rep)),
                       machines);
  };
}

/// Prints the standard bench header.
inline void print_header(const char* name, const char* paper_ref) {
  std::printf("\n=== %s — reproduces %s ===\n", name, paper_ref);
  std::printf("seed=%llu reps=%zu scale=%.2f\n",
              static_cast<unsigned long long>(util::bench_seed()),
              util::bench_reps(), util::bench_scale());
}

/// Path of the bench's raw-output CSV: results/results_<bench>.csv under
/// the working directory.  Creates results/ on first use so benches can be
/// run from a fresh build tree or the repo root alike.
inline std::string results_csv_path(const std::string& bench_name) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);  // best-effort
  return "results/results_" + bench_name + ".csv";
}

/// Emits the table + plot + CSV for a finished sweep.
inline void emit(const std::string& bench_name,
                 const std::vector<exp::Series>& series,
                 exp::PlotOptions opts,
                 const std::vector<std::vector<std::string>>& table) {
  std::printf("%s", exp::render_table(table).c_str());
  std::printf("\n%s", exp::render_plot(series, opts).c_str());
  const std::string csv = results_csv_path(bench_name);
  if (exp::write_series_csv(csv, series)) {
    std::printf("raw series written to %s\n", csv.c_str());
  }
}

}  // namespace mris::bench
