// Shared scaffolding for the figure-reproduction benches.
//
// Every bench is a standalone binary that prints the figure's series as a
// table plus an ASCII plot, and writes the raw numbers to
// results/results_<bench>.csv under the working directory.  Scale knobs
// (env vars):
//   MRIS_BENCH_SCALE  multiplies job counts (default 1.0)
//   MRIS_SEED         base RNG seed (default 42)
//   MRIS_REPS         replications per data point (default 10, as in the
//                     paper's Section 7.1)
//
// Scale note (DESIGN.md §3): the paper runs N up to 64000 on M = 20
// machines.  Laptop-default benches keep the same *load per machine* with
// proportionally fewer machines and jobs so that CADP's O(n^2/eps) cost
// stays interactive; MRIS_BENCH_SCALE=8 with M overrides reproduces the
// paper's absolute scale.
#pragma once

#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "exp/ascii.hpp"
#include "exp/runner.hpp"
#include "trace/generator.hpp"
#include "trace/sampling.hpp"
#include "util/env.hpp"
#include "util/simd.hpp"

namespace mris::bench {

/// Scales a job count by MRIS_BENCH_SCALE.
inline std::size_t scaled(std::size_t n) {
  const double s = util::bench_scale();
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * s);
  return v > 0 ? v : 1;
}

/// Generates the bench's base workload (paper-like defaults: 12.5-day
/// window, heavy-tailed durations, contended VM mix), merged to 4 resources.
inline trace::Workload base_workload(std::size_t base_jobs,
                                     std::uint64_t seed_offset = 0) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = base_jobs;
  cfg.seed = util::bench_seed() + seed_offset;
  return merge_storage(trace::generate_azure_like(cfg));
}

/// Instance factory for one (N, machines) data point: replication `rep`
/// downsamples the base workload with a distinct offset, as in Sec 7.1.
/// `offsets` must come from trace::sample_offsets(factor, reps, ...).
inline std::function<Instance(std::size_t)> downsample_factory(
    const trace::Workload& base, std::size_t factor,
    std::vector<std::size_t> offsets, int machines) {
  return [&base, factor, offsets = std::move(offsets),
          machines](std::size_t rep) {
    return to_instance(trace::downsample(base, factor, offsets.at(rep)),
                       machines);
  };
}

/// Prints the standard bench header.
inline void print_header(const char* name, const char* paper_ref) {
  std::printf("\n=== %s — reproduces %s ===\n", name, paper_ref);
  std::printf("seed=%llu reps=%zu scale=%.2f\n",
              static_cast<unsigned long long>(util::bench_seed()),
              util::bench_reps(), util::bench_scale());
}

/// Path of the bench's raw-output CSV: results/results_<bench>.csv under
/// the working directory.  Creates results/ on first use so benches can be
/// run from a fresh build tree or the repo root alike.
inline std::string results_csv_path(const std::string& bench_name) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);  // best-effort
  return "results/results_" + bench_name + ".csv";
}

/// Path of the bench's machine-readable summary: results/BENCH_<bench>.json.
inline std::string results_json_path(const std::string& bench_name) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);  // best-effort
  return "results/BENCH_" + bench_name + ".json";
}

// Build provenance, baked in by bench/CMakeLists.txt at configure time.
// Constant for a given build, so seeded double runs of one binary still
// produce byte-identical JSON (the determinism CI job depends on that).
#ifndef MRIS_BENCH_GIT_SHA
#define MRIS_BENCH_GIT_SHA "unknown"
#endif
#ifndef MRIS_BENCH_COMPILER
#define MRIS_BENCH_COMPILER "unknown"
#endif
#ifndef MRIS_BENCH_FLAGS
#define MRIS_BENCH_FLAGS ""
#endif

/// Escapes a string for embedding in a JSON double-quoted literal
/// (compiler flags can contain quotes and backslashes).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable JSON number (matches the CSV convention).
inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

inline void json_array(std::FILE* f, const std::vector<double>& xs) {
  std::fputc('[', f);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) std::fputs(", ", f);
    std::fputs(json_num(xs[i]).c_str(), f);
  }
  std::fputc(']', f);
}

/// Active SIMD dispatch level at bench time ("scalar"/"avx2") — stamped
/// into every BENCH_*.json provenance block; perf-trajectory rows are only
/// comparable across machines when the kernel path is recorded next to the
/// compiler and flags.  Constant for a given (build, CPU, MRIS_SIMD_LEVEL)
/// triple, so seeded double runs still produce byte-identical JSON.
inline const char* simd_level_name() {
  return util::simd::level_name(util::simd::active_level());
}

/// The shared provenance object (git SHA, compiler, flags, SIMD dispatch
/// level), without surrounding whitespace — every BENCH_*.json writer
/// embeds exactly this, so the block never drifts between benches.
inline std::string provenance_json() {
  return std::string("\"provenance\": {\"git_sha\": \"") +
         json_escape(MRIS_BENCH_GIT_SHA) + "\", \"compiler\": \"" +
         json_escape(MRIS_BENCH_COMPILER) + "\", \"flags\": \"" +
         json_escape(MRIS_BENCH_FLAGS) + "\", \"simd\": \"" +
         simd_level_name() + "\"}";
}

/// Extracts the raw text of a top-level `"name": [ ... ]` section from an
/// existing JSON results file ("" when the file or section is absent).
/// micro_profile and micro_kernels co-own results/BENCH_profile.json: each
/// rewrites the file but splices the other's section back in through this,
/// so running either never discards the other's rows.
inline std::string read_json_section(const std::string& path,
                                     const std::string& name) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string text;
  char buf[4096];
  for (std::size_t got; (got = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, got);
  }
  std::fclose(f);
  const std::string key = "\"" + name + "\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return "";
  const std::size_t open = text.find('[', at + key.size());
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '[') ++depth;
    if (text[i] == ']' && --depth == 0) {
      return text.substr(open, i - open + 1);
    }
  }
  return "";
}

/// Writes the per-bench JSON summary (schema 2): bench name, seed/reps/
/// scale config, build provenance (git SHA, compiler, flags — fixed per
/// build), and the series as parallel x/y/ci arrays.  Deliberately carries
/// NO wall-clock timings — seeded double runs must produce byte-identical
/// files (the determinism CI job diffs them).
inline bool write_series_json(const std::string& path,
                              const std::string& bench_name,
                              const std::vector<exp::Series>& series) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"schema_version\": 2,\n"
               "  \"bench\": \"%s\",\n"
               "  \"config\": {\"seed\": %llu, \"reps\": %zu, "
               "\"scale\": %s},\n"
               "  %s,\n"
               "  \"series\": [\n",
               bench_name.c_str(),
               static_cast<unsigned long long>(util::bench_seed()),
               util::bench_reps(), json_num(util::bench_scale()).c_str(),
               provenance_json().c_str());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const exp::Series& s = series[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"x\": ", s.name.c_str());
    json_array(f, s.x);
    std::fputs(", \"y\": ", f);
    json_array(f, s.y);
    std::fputs(", \"ci95_half_width\": ", f);
    json_array(f, s.ci);
    std::fprintf(f, "}%s\n", i + 1 < series.size() ? "," : "");
  }
  std::fputs("  ]\n}\n", f);
  return std::fclose(f) == 0;
}

/// Emits the table + plot + CSV + JSON summary for a finished sweep.
inline void emit(const std::string& bench_name,
                 const std::vector<exp::Series>& series,
                 exp::PlotOptions opts,
                 const std::vector<std::vector<std::string>>& table) {
  std::printf("%s", exp::render_table(table).c_str());
  std::printf("\n%s", exp::render_plot(series, opts).c_str());
  const std::string csv = results_csv_path(bench_name);
  if (exp::write_series_csv(csv, series)) {
    std::printf("raw series written to %s\n", csv.c_str());
  }
  const std::string json = results_json_path(bench_name);
  if (write_series_json(json, bench_name, series)) {
    std::printf("json summary written to %s\n", json.c_str());
  }
}

}  // namespace mris::bench
