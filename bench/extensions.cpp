// Beyond the paper: DRF (the fairness baseline from related work, Sec
// 2.2.1) and HYBRID (PQ-at-idle / MRIS-under-load) compared against the
// paper's lineup at a light and a heavy load level.
//
// Expected shape: at light load HYBRID strictly improves MRIS's AWCT and
// queuing delay (immediate commits whenever utilization is below its
// threshold) while PQ-family schedulers remain best; at heavy load HYBRID
// converges to MRIS's win; DRF optimizes fairness, not completion time,
// and falls behind everywhere it binds.
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("extensions", "library extensions (DESIGN.md §5)");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(2000);
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xe77u);
  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);

  std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Mris(),    exp::SchedulerSpec::Hybrid(),
      exp::SchedulerSpec::Drf(),     exp::SchedulerSpec::Pq(Heuristic::kWsjf),
      exp::SchedulerSpec::Tetris(),
  };

  for (const auto& [label, machines] :
       std::vector<std::pair<std::string, int>>{{"light (M=16)", 16},
                                                {"heavy (M=2)", 2}}) {
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    const auto points = exp::replicate_lineup(reps, factory, lineup);
    std::vector<std::vector<std::string>> table = {
        {"load: " + label, "AWCT", "makespan", "mean delay"}};
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      table.push_back({lineup[s].display_name(),
                       exp::format_ci(points[s].awct),
                       exp::format_ci(points[s].makespan),
                       exp::format_ci(points[s].mean_delay)});
    }
    std::printf("%s\n", exp::render_table(table).c_str());
  }
  std::printf(
      "expected: HYBRID <= MRIS at light load (reduced interval tax) and\n"
      "~ MRIS at heavy load; DRF trades completion time for fairness.\n");
  return 0;
}
