// Figure 3: effect of the job arrival rate (number of jobs over the fixed
// 12.5-day window) on AWCT, all schedulers, M = 20 in the paper (M = 4 at
// laptop scale — same jobs-per-machine as the paper's crossover region).
//
// Expected shape (Sec 7.5.1): at small N the PQ family (PQ / TETRIS /
// BF-EXEC) beats MRIS; as N grows the cluster saturates and MRIS crosses
// below all of them; CA-PQ is the worst-case reference throughout.
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("fig3_arrival_rate", "Figure 3 (Sec 7.5.1)");
  const std::size_t reps = util::bench_reps();
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 4));
  const std::vector<std::size_t> n_values = {
      bench::scaled(500), bench::scaled(1000), bench::scaled(2000),
      bench::scaled(4000), bench::scaled(8000)};
  const std::size_t base_jobs = n_values.back() * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xf39u);

  const std::vector<exp::SchedulerSpec> lineup = exp::comparison_lineup();

  std::vector<exp::Series> series;
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"N"};
    for (const auto& spec : lineup) header.push_back(spec.display_name());
    table.push_back(std::move(header));
  }

  for (std::size_t n : n_values) {
    const std::size_t factor = base_jobs / n;
    const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    const auto points = exp::replicate_lineup(reps, factory, lineup);

    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      row.push_back(exp::format_ci(points[s].awct));
      series[s].x.push_back(static_cast<double>(n));
      series[s].y.push_back(points[s].awct.mean);
      series[s].ci.push_back(points[s].awct.half_width);
    }
    table.push_back(std::move(row));
  }

  exp::PlotOptions opts;
  opts.title = "Fig 3: AWCT vs job arrival count";
  opts.xlabel = "number of jobs N";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  bench::emit("fig3_arrival_rate", series, opts, table);
  return 0;
}
