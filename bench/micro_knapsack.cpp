// Microbenchmarks of the knapsack subroutines (Sec 5.3 runtime claims):
// CADP is O(n^2 / eps); the greedy constraint approximation is O(n log n).
#include <benchmark/benchmark.h>

#include "knapsack/knapsack.hpp"
#include "util/rng.hpp"

namespace {

std::vector<mris::knapsack::Item> random_items(std::size_t n,
                                               std::uint64_t seed) {
  mris::util::Xoshiro256 rng(seed);
  std::vector<mris::knapsack::Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({mris::util::uniform(rng, 0.5, 50.0),
                     mris::util::uniform(rng, 0.5, 3.0),
                     static_cast<std::int32_t>(i)});
  }
  return items;
}

void BM_Cadp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  const auto items = random_items(n, 42);
  // Capacity that binds: ~1/4 of the total size.
  double total = 0.0;
  for (const auto& it : items) total += it.size;
  const double capacity = total / 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mris::knapsack::solve_cadp(items, capacity, eps));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_Cadp)
    ->ArgsProduct({{128, 256, 512, 1024, 2048}, {50}})
    ->Complexity(benchmark::oNSquared);

void BM_CadpEpsSweep(benchmark::State& state) {
  const auto items = random_items(512, 42);
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  double total = 0.0;
  for (const auto& it : items) total += it.size;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mris::knapsack::solve_cadp(items, total / 4.0, eps));
  }
}
BENCHMARK(BM_CadpEpsSweep)->Arg(10)->Arg(25)->Arg(50)->Arg(90);

void BM_GreedyConstraint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto items = random_items(n, 42);
  double total = 0.0;
  for (const auto& it : items) total += it.size;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mris::knapsack::solve_greedy_constraint(items, total / 4.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_GreedyConstraint)
    ->Range(128, 65536)
    ->Complexity(benchmark::oNLogN);

void BM_ExactDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mris::util::Xoshiro256 rng(7);
  std::vector<mris::knapsack::Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({static_cast<double>(mris::util::uniform_int(rng, 1, 64)),
                     mris::util::uniform(rng, 0.5, 3.0),
                     static_cast<std::int32_t>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mris::knapsack::solve_exact_dp(items, static_cast<std::int64_t>(8 * n)));
  }
}
BENCHMARK(BM_ExactDp)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
