// Per-kernel micro-benchmark for the SIMD dispatch layer (util/simd.hpp):
// every kernel in the dispatch table, timed scalar-table vs vector-table
// on the access pattern its caller produces, plus two end-to-end rows that
// flip the process-wide dispatch level around real scheduler code.
//
// Kernel rows (kind "kernel") — deterministic synthetic operands:
//   * min_headroom      batched headroom recompute over stride-4 usage rows
//                       (the reserve/release maintenance pass at R = 4);
//   * feasibility_scan  fused first_conflict hop-scan over long breakpoint
//                       and headroom arrays (the fits/earliest_fit fast
//                       path, window-bounded);
//   * reserve_release   add_row + sub_clamp_row round trips (the timeline
//                       mutation pair);
//   * cadp_dp           dp_relax item loop on a pooled dp row (the CADP
//                       inner loop).
//
// End-to-end rows (kind "end_to_end") — set_level() flips the dispatch:
//   * profile_replay    earliest_fit/reserve/release replay on a real
//                       ResourceProfile, placements checksummed;
//   * cadp_select       solve_cadp selections checksummed.
//
// Every row runs both paths over identical inputs and the bit-pattern
// checksums must match — the bench FAILS (exit code) on any divergence.
// Wall-clock speedups are informational; CI gates only the exit code.
//
// Outputs:
//   * results/BENCH_profile.json — the "kernels" array (micro_profile
//     co-owns the file and contributes "workloads"; each binary splices
//     the other's section back in, see bench_common.hpp);
//   * results/KERNEL_checksums.txt — checksums only, no timings: byte-
//     identical across -DMRIS_SIMD=ON/OFF builds of the same tree, which
//     is exactly what the CI cross-build diff asserts.
//
// Usage: micro_kernels [row-name...] — with arguments, runs only the named
// rows and skips the result files (partial runs must not clobber them).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "knapsack/knapsack.hpp"
#include "sim/resource_profile.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace mris::bench {
namespace {

namespace simd = util::simd;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over bit patterns — equal checksums == bit-identical outputs.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }

  void mix_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    mix_u64(bits);
  }

  void mix_doubles(const std::vector<double>& xs) {
    for (double x : xs) mix_double(x);
  }
};

struct Row {
  std::string name;
  std::string kind;  // "kernel" or "end_to_end"
  std::size_t n = 0;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  std::uint64_t scalar_sum = 0;
  std::uint64_t simd_sum = 0;

  bool identical() const { return scalar_sum == simd_sum; }
  double speedup() const {
    return simd_ms > 0.0 ? scalar_ms / simd_ms : 1.0;
  }
};

void print_row(const Row& r) {
  std::printf("%-16s %-10s n=%-8zu scalar=%9.3f ms  %6s=%9.3f ms  "
              "speedup=%5.2fx  checksums %s\n",
              r.name.c_str(), r.kind.c_str(), r.n, r.scalar_ms,
              simd::level_name(simd::avx2_available() ? simd::Level::kAvx2
                                                      : simd::Level::kScalar),
              r.simd_ms, r.speedup(),
              r.identical() ? "IDENTICAL" : "DIVERGED");
}

/// The vector side of every comparison: the best level this build/CPU has.
/// Without AVX2 both sides run the scalar table and the row degenerates to
/// a self-check (speedup ~1, checksums trivially equal).
simd::Level vector_level() {
  return simd::avx2_available() ? simd::Level::kAvx2 : simd::Level::kScalar;
}

/// Times `body` under both kernel tables, best-of-reps, and records the
/// bit-pattern checksum each table produced.
Row run_kernel_row(const std::string& name, std::size_t n,
                   const std::function<std::uint64_t(const simd::Kernels&)>&
                       body) {
  Row r;
  r.name = name;
  r.kind = "kernel";
  r.n = n;
  const std::size_t reps = util::bench_reps();
  r.scalar_ms = 1e300;
  r.simd_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      r.scalar_sum = body(simd::kernel_table(simd::Level::kScalar));
      r.scalar_ms = std::min(r.scalar_ms, ms_since(t0));
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      r.simd_sum = body(simd::kernel_table(vector_level()));
      r.simd_ms = std::min(r.simd_ms, ms_since(t0));
    }
  }
  print_row(r);
  return r;
}

/// Times `body` under both process-wide dispatch levels (set_level), for
/// the end-to-end rows whose code paths call simd::active() internally.
Row run_level_row(const std::string& name, std::size_t n,
                  const std::function<std::uint64_t()>& body) {
  Row r;
  r.name = name;
  r.kind = "end_to_end";
  r.n = n;
  const simd::Level before = simd::active_level();
  const std::size_t reps = util::bench_reps();
  r.scalar_ms = 1e300;
  r.simd_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    simd::set_level(simd::Level::kScalar);
    {
      const auto t0 = std::chrono::steady_clock::now();
      r.scalar_sum = body();
      r.scalar_ms = std::min(r.scalar_ms, ms_since(t0));
    }
    simd::set_level(vector_level());
    {
      const auto t0 = std::chrono::steady_clock::now();
      r.simd_sum = body();
      r.simd_ms = std::min(r.simd_ms, ms_since(t0));
    }
  }
  simd::set_level(before);
  print_row(r);
  return r;
}

// --- kernel-row workloads -------------------------------------------------

constexpr std::size_t kStride = simd::padded_stride(4);  // R = 4

std::vector<double> random_usage_rows(std::size_t rows, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> usage(rows * kStride);
  for (double& x : usage) x = util::uniform(rng, 0.0, 0.95);
  return usage;
}

/// Headroom-cache maintenance: recompute all headrooms from stride-4 usage
/// rows, the pass ResourceProfile::add/release runs over the touched range.
Row min_headroom_row() {
  const std::size_t rows = scaled(4096);
  const std::size_t iters = 400;
  const std::vector<double> usage = random_usage_rows(rows, 0xa1);
  return run_kernel_row(
      "min_headroom", rows, [&](const simd::Kernels& k) {
        std::vector<double> headroom(rows, 0.0);
        for (std::size_t it = 0; it < iters; ++it) {
          k.min_headroom(usage.data(), rows, kStride, headroom.data());
        }
        Fnv f;
        f.mix_doubles(headroom);
        return f.h;
      });
}

/// Feasibility fast path: fused first_conflict hop-scan across long
/// breakpoint/headroom arrays at several conflict densities
/// (fits/earliest_fit's access pattern: long conflict-free runs punctuated
/// by full segments, bounded by the first breakpoint past the window end).
Row feasibility_scan_row() {
  const std::size_t n = scaled(std::size_t{1} << 16);
  util::Xoshiro256 rng(0xa2);
  std::vector<double> times(n), headroom(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += util::uniform(rng, 0.1, 1.0);
    times[i] = t;
    headroom[i] = util::uniform(rng, 0.3, 1.0);
  }
  // Mostly-fits densities: a window-bounded conflict-free scan (the
  // successful fits() check) plus ~0.1%/1.4% sparse-conflict hop scans.
  // The dense-conflict regime — where the caller's inline check keeps the
  // scan off the kernel path entirely and there is nothing to vectorize —
  // is covered end-to-end by profile_replay below.
  const double dmaxes[] = {0.29, 0.301, 0.31};
  // Window ends mid-array, so the `times[i] >= end` bound (not n) is what
  // normally stops the scan — as in fits().
  const double ends[] = {times[n / 2], times[n - 1], times[2 * n / 3]};
  return run_kernel_row(
      "feasibility_scan", n, [&](const simd::Kernels& k) {
        Fnv f;
        for (int it = 0; it < 60; ++it) {
          const double dmax = dmaxes[it % 3];
          const double end = ends[it % 3];
          std::size_t i = 0;
          while (i < n) {
            i += k.first_conflict(times.data() + i, headroom.data() + i,
                                  n - i, end, dmax);
            if (i >= n || times[i] >= end) break;
            f.mix_u64(i);
            ++i;
          }
        }
        return f.h;
      });
}

/// Timeline mutation pair: add_row over every row, then sub_clamp_row of
/// the same demands (usage returns to start modulo dust clamping).
Row reserve_release_row() {
  const std::size_t rows = scaled(4096);
  const std::size_t iters = 200;
  const std::vector<double> base = random_usage_rows(rows, 0xa3);
  util::Xoshiro256 rng(0xa4);
  std::vector<double> demand(kStride, 0.0);
  for (std::size_t l = 0; l < 4; ++l) demand[l] = util::uniform(rng, 0.0, 0.4);
  return run_kernel_row(
      "reserve_release", rows, [&](const simd::Kernels& k) {
        std::vector<double> usage = base;
        bool ok = true;
        for (std::size_t it = 0; it < iters; ++it) {
          for (std::size_t i = 0; i < rows; ++i) {
            k.add_row(usage.data() + i * kStride, demand.data(), kStride);
          }
          for (std::size_t i = 0; i < rows; ++i) {
            ok &= k.sub_clamp_row(usage.data() + i * kStride, demand.data(),
                                  kStride, 1e-6);
          }
        }
        Fnv f;
        f.mix_doubles(usage);
        f.mix_u64(ok ? 1 : 0);
        return f.h;
      });
}

/// CADP inner loop: dp_relax across a deterministic item set on one pooled
/// dp row, exactly the loop knapsack.cpp's dp_table runs per item.
Row cadp_dp_row() {
  const std::size_t cap = scaled(4096);
  const std::size_t items = 2000;
  util::Xoshiro256 rng(0xa5);
  std::vector<std::size_t> sizes(items);
  std::vector<double> profits(items);
  for (std::size_t j = 0; j < items; ++j) {
    sizes[j] = 1 + util::uniform_index(rng, cap);
    profits[j] = util::uniform(rng, 0.1, 10.0);
  }
  return run_kernel_row("cadp_dp", cap, [&](const simd::Kernels& k) {
    std::vector<double> dp(cap + 1, 0.0);
    for (std::size_t j = 0; j < items; ++j) {
      k.dp_relax(dp.data(), cap, sizes[j], profits[j]);
    }
    Fnv f;
    f.mix_doubles(dp);
    return f.h;
  });
}

// --- end-to-end rows ------------------------------------------------------

/// Dense-backfill replay on a real ResourceProfile: earliest_fit + reserve
/// with periodic exact-endpoint releases, placements checksummed.
Row profile_replay_row() {
  const std::size_t jobs = scaled(6000);
  struct Job {
    double duration;
    std::vector<double> demand;
  };
  util::Xoshiro256 rng(0xa6);
  std::vector<Job> plan;
  plan.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    Job job;
    job.duration = util::uniform(rng, 0.5, 4.0);
    job.demand.resize(4);
    for (double& d : job.demand) d = util::uniform(rng, 0.05, 0.45);
    plan.push_back(std::move(job));
  }
  return run_level_row("profile_replay", jobs, [&] {
    ResourceProfile profile(4);
    Fnv f;
    std::vector<std::pair<Time, std::size_t>> placed;  // (start, plan idx)
    placed.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
      const Job& job = plan[j];
      const Time s = profile.earliest_fit(0.0, job.duration, job.demand);
      profile.reserve(s, job.duration, job.demand);
      placed.emplace_back(s, j);
      f.mix_double(s);
      if (j % 4 == 3) {
        // Exact-endpoint release of the oldest still-held reservation —
        // the fault-requeue path (sub_clamp + headroom refresh + coalesce).
        const auto [rs, ri] = placed[placed.size() / 2];
        profile.release(rs, plan[ri].duration, plan[ri].demand);
        f.mix_double(profile.usage_at(rs, static_cast<int>(ri % 4)));
      }
    }
    f.mix_u64(profile.num_breakpoints());
    return f.h;
  });
}

/// CADP end-to-end: solve_cadp selections across several instances.
Row cadp_select_row() {
  const std::size_t items = scaled(300);
  util::Xoshiro256 rng(0xa7);
  std::vector<std::vector<knapsack::Item>> instances;
  for (int inst = 0; inst < 4; ++inst) {
    std::vector<knapsack::Item> v;
    v.reserve(items);
    for (std::size_t j = 0; j < items; ++j) {
      knapsack::Item it;
      it.size = util::uniform(rng, 0.01, 0.5);
      it.profit = util::uniform(rng, 0.1, 5.0);
      it.tag = static_cast<std::int32_t>(j);
      v.push_back(it);
    }
    instances.push_back(std::move(v));
  }
  return run_level_row("cadp_select", items, [&] {
    Fnv f;
    for (const auto& inst : instances) {
      const knapsack::Selection sel =
          knapsack::solve_cadp(inst, /*capacity=*/1.0, /*eps=*/0.05);
      for (std::int32_t tag : sel.tags) {
        f.mix_u64(static_cast<std::uint64_t>(tag));
      }
      f.mix_double(sel.total_profit);
      f.mix_double(sel.total_size);
    }
    return f.h;
  });
}

// --- driver ---------------------------------------------------------------

int run(int argc, char** argv) {
  print_header("micro_kernels",
               "SIMD kernel layer (util/simd.hpp) scalar vs vector paths");
  std::printf("compiled=%s available=%s dispatch=%s\n",
              simd::avx2_compiled() ? "avx2" : "scalar-only",
              simd::avx2_available() ? "avx2" : "scalar-only",
              simd::level_name(simd::active_level()));

  const std::vector<std::string> filter(argv + 1, argv + argc);
  const auto wanted = [&](const char* name) {
    if (filter.empty()) return true;
    for (const std::string& f : filter) {
      if (f == name) return true;
    }
    return false;
  };

  std::vector<Row> rows;
  if (wanted("min_headroom")) rows.push_back(min_headroom_row());
  if (wanted("feasibility_scan")) rows.push_back(feasibility_scan_row());
  if (wanted("reserve_release")) rows.push_back(reserve_release_row());
  if (wanted("cadp_dp")) rows.push_back(cadp_dp_row());
  if (wanted("profile_replay")) rows.push_back(profile_replay_row());
  if (wanted("cadp_select")) rows.push_back(cadp_select_row());

  if (filter.empty()) {
    const std::string path = results_json_path("profile");
    // micro_profile co-owns this file: splice its workload rows back in so
    // running the kernel bench never discards the workload trajectory.
    const std::string workloads = read_json_section(path, "workloads");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n"
                   "  \"schema_version\": 2,\n"
                   "  \"bench\": \"micro_kernels\",\n"
                   "  \"config\": {\"seed\": %llu, \"scale\": %s},\n"
                   "  %s,\n",
                   static_cast<unsigned long long>(util::bench_seed()),
                   json_num(util::bench_scale()).c_str(),
                   provenance_json().c_str());
      if (!workloads.empty()) {
        std::fprintf(f, "  \"workloads\": %s,\n", workloads.c_str());
      }
      std::fputs("  \"kernels\": [\n", f);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"kind\": \"%s\", \"n\": %zu, "
                     "\"scalar_ms\": %.3f, \"simd_ms\": %.3f, "
                     "\"speedup\": %.2f, \"identical\": %s}%s\n",
                     r.name.c_str(), r.kind.c_str(), r.n, r.scalar_ms,
                     r.simd_ms, r.speedup(),
                     r.identical() ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
      }
      std::fputs("  ]\n}\n", f);
      std::fclose(f);
      std::printf("json summary written to %s\n", path.c_str());
    }

    // Checksums only (no timings): byte-identical across SIMD ON/OFF
    // builds of one tree — the CI cross-build identity diff target.
    const std::string sums_path = "results/KERNEL_checksums.txt";
    std::FILE* sf = std::fopen(sums_path.c_str(), "w");
    if (sf != nullptr) {
      for (const Row& r : rows) {
        std::fprintf(sf, "%-16s scalar=%016llx simd=%016llx\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.scalar_sum),
                     static_cast<unsigned long long>(r.simd_sum));
      }
      std::fclose(sf);
      std::printf("checksums written to %s\n", sums_path.c_str());
    }
  } else {
    std::printf("row filter active: result files not rewritten\n");
  }

  for (const Row& r : rows) {
    if (!r.identical()) {
      std::printf("FAIL: %s checksums diverged between kernel paths\n",
                  r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace mris::bench

int main(int argc, char** argv) { return mris::bench::run(argc, argv); }
