// Calendar micro-benchmark: the flat SoA ResourceProfile rewrite against
// the pre-rewrite implementation (vector-of-vectors segments, restarting
// earliest-fit scan, no coalescing or pruning), embedded below as
// LegacyProfile.
//
// Three workloads cover the hot paths the schedulers exercise:
//   * dense_backfill   — earliest_fit + reserve of N jobs probing from t=0
//                        into an ever-denser calendar (MRIS backfilling);
//   * long_horizon     — monotone arrival-driven probes over a growing
//                        horizon (PQ list scheduling; scan hint + pruning);
//   * fault_churn      — reserve / exact-endpoint release / outage blocks
//                        (the fault engine's requeue path; coalescing).
//
// Both implementations run the identical operation sequence and must
// produce bit-identical placements (checksummed) — the bench FAILS (exit
// code) on any divergence, and reports wall-clock speedups which are
// informational only.  Results go to results/BENCH_profile.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/resource_profile.hpp"
#include "util/rng.hpp"

namespace mris::bench {
namespace {

// --- LegacyProfile: the pre-rewrite implementation, kept verbatim ---------
// (heap-allocated usage row per segment, binary-search restart per
// earliest_fit conflict, no headroom cache / hint / coalescing / pruning).

class LegacyProfile {
 public:
  explicit LegacyProfile(int num_resources) {
    times_.push_back(0.0);
    usage_.emplace_back(static_cast<std::size_t>(num_resources), 0.0);
  }

  bool fits(Time start, Time duration, std::span<const double> demand,
            double tolerance = 1e-9) const {
    if (duration <= 0.0) return true;
    const Time end = start + duration;
    for (std::size_t i = segment_of(start); i < times_.size(); ++i) {
      if (times_[i] >= end) break;
      for (std::size_t l = 0; l < demand.size(); ++l) {
        if (usage_[i][l] + demand[l] > 1.0 + tolerance) return false;
      }
    }
    return true;
  }

  Time earliest_fit(Time not_before, Time duration,
                    std::span<const double> demand,
                    double tolerance = 1e-9) const {
    Time s = std::max(not_before, 0.0);
    if (duration <= 0.0) return s;
    for (;;) {
      const Time end = s + duration;
      Time conflict_next = -1.0;
      for (std::size_t i = segment_of(s); i < times_.size(); ++i) {
        if (times_[i] >= end) break;
        bool violated = false;
        for (std::size_t l = 0; l < demand.size(); ++l) {
          if (usage_[i][l] + demand[l] > 1.0 + tolerance) {
            violated = true;
            break;
          }
        }
        if (violated) {
          conflict_next = (i + 1 < times_.size())
                              ? times_[i + 1]
                              : std::numeric_limits<Time>::infinity();
          break;
        }
      }
      if (conflict_next < 0.0) return s;
      s = conflict_next;
    }
  }

  void reserve(Time start, Time duration, std::span<const double> demand) {
    if (duration <= 0.0) return;
    add(start, start + duration, demand);
  }

  void force_reserve_until(Time start, Time end,
                           std::span<const double> demand) {
    if (!(end > start)) return;
    add(start, end, demand);
  }

  void release_until(Time start, Time end, std::span<const double> demand) {
    if (!(end > start)) return;
    const std::size_t first = ensure_breakpoint(std::max(start, 0.0));
    const std::size_t last = ensure_breakpoint(end);
    for (std::size_t i = first; i < last; ++i) {
      for (std::size_t l = 0; l < demand.size(); ++l) {
        usage_[i][l] -= demand[l];
        if (usage_[i][l] < 0.0 && usage_[i][l] > -1e-12) usage_[i][l] = 0.0;
      }
    }
  }

  double usage_at(Time t, int resource) const {
    return usage_[segment_of(t)][static_cast<std::size_t>(resource)];
  }

  void prune_before(Time /*t*/) {}  // the legacy calendar never compacts

 private:
  std::size_t segment_of(Time t) const {
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    if (it == times_.begin()) return 0;
    return static_cast<std::size_t>(it - times_.begin()) - 1;
  }

  std::size_t ensure_breakpoint(Time t) {
    const std::size_t i = segment_of(t);
    if (times_[i] == t) return i;
    times_.insert(times_.begin() + static_cast<std::ptrdiff_t>(i) + 1, t);
    usage_.insert(usage_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  usage_[i]);
    return i + 1;
  }

  void add(Time start, Time end, std::span<const double> demand) {
    const std::size_t first = ensure_breakpoint(std::max(start, 0.0));
    const std::size_t last = ensure_breakpoint(end);
    for (std::size_t i = first; i < last; ++i) {
      for (std::size_t l = 0; l < demand.size(); ++l) {
        usage_[i][l] += demand[l];
      }
    }
  }

  std::vector<Time> times_;
  std::vector<std::vector<double>> usage_;
};

// --- Workloads ------------------------------------------------------------

constexpr int kResources = 4;

struct Op {
  enum class Kind { kBackfill, kTimedReserve, kBlock, kCancel } kind;
  Time a = 0.0;  ///< not_before / start
  Time b = 0.0;  ///< duration (backfill, timed) or end (block/cancel)
  std::vector<double> demand;
};

/// Replays `ops` against a profile; returns a checksum over every computed
/// start and a post-run usage sweep, so two implementations can be compared
/// for bit-identical behavior.  kCancel ops release the reservation made by
/// the op at index `a` using the exact interval it was committed with.
template <typename Profile>
double replay(Profile& profile, const std::vector<Op>& ops,
              bool prune, double* checksum_out) {
  std::vector<std::pair<Time, Time>> committed(ops.size(), {0.0, 0.0});
  double checksum = 0.0;
  int since_prune = 0;
  Time clock = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::Kind::kBackfill:
      case Op::Kind::kTimedReserve: {
        const Time s = profile.earliest_fit(op.a, op.b, op.demand);
        profile.reserve(s, op.b, op.demand);
        committed[i] = {s, s + op.b};
        checksum += s;
        clock = std::max(clock, op.a);
        break;
      }
      case Op::Kind::kBlock:
        profile.force_reserve_until(op.a, op.b, op.demand);
        committed[i] = {op.a, op.b};
        break;
      case Op::Kind::kCancel: {
        const auto& iv = committed[static_cast<std::size_t>(op.a)];
        // Cancel the tail from op.b onward with the exact reserved end.
        const Time from = std::max(iv.first, op.b);
        profile.release_until(from, iv.second, op.demand);
        checksum += from;
        break;
      }
    }
    if (prune && ++since_prune >= 32) {
      since_prune = 0;
      // Lag the committed horizon by more than the workloads' deepest
      // lookback (5 time units), so every later probe lands at or after
      // the bound — where pruning provably preserves all queries.
      profile.prune_before(std::max(0.0, clock - 8.0));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Post-run sweep so mutation-only divergence cannot hide.  Probes start
  // at the final prune bound (for BOTH implementations, so they sample the
  // same instants): below it the pruned timeline is flattened by design
  // and comparison against the unpruned calendar is meaningless.
  const Time sweep_base = std::max(0.0, clock - 8.0);
  for (int probe = 0; probe < 256; ++probe) {
    const Time t = sweep_base + static_cast<double>(probe) * 3.0;
    for (int l = 0; l < kResources; ++l) checksum += profile.usage_at(t, l);
  }
  *checksum_out = checksum;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::vector<double> random_demand(util::Xoshiro256& rng, double lo,
                                  double hi) {
  std::vector<double> d(kResources);
  for (auto& x : d) x = util::uniform(rng, lo, hi);
  return d;
}

/// Dense backfilling: every job probes from t=0 into an ever-denser
/// calendar — the MRIS backfilling access pattern.
std::vector<Op> dense_backfill_ops(std::size_t jobs, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    ops.push_back({Op::Kind::kBackfill, 0.0, util::uniform(rng, 0.5, 4.0),
                   random_demand(rng, 0.05, 0.45)});
  }
  return ops;
}

/// Long horizon: monotone not_before (the engine clock) with occasional
/// lookbacks — the PQ list-scheduling access pattern over a long trace.
std::vector<Op> long_horizon_ops(std::size_t jobs, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    const Time now = static_cast<double>(i) * 0.75;
    const Time nb = now - (util::uniform01(rng) < 0.1
                               ? util::uniform(rng, 0.0, 5.0)
                               : 0.0);
    ops.push_back({Op::Kind::kTimedReserve, std::max(nb, 0.0),
                   util::uniform(rng, 1.0, 8.0),
                   random_demand(rng, 0.1, 0.5)});
  }
  return ops;
}

/// Fault churn: reservations interleaved with outage blocks and
/// exact-endpoint tail cancels — the fault engine's requeue path.
std::vector<Op> fault_churn_ops(std::size_t jobs, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(jobs + jobs / 2);
  for (std::size_t i = 0; i < jobs; ++i) {
    const Time now = static_cast<double>(ops.size()) * 0.5;
    ops.push_back({Op::Kind::kTimedReserve, now, util::uniform(rng, 1.0, 6.0),
                   random_demand(rng, 0.1, 0.4)});
    const std::size_t job_op = ops.size() - 1;
    if (util::uniform01(rng) < 0.25) {
      // Outage block over the near future, full machine.
      const Time down = now + util::uniform(rng, 0.5, 2.0);
      ops.push_back({Op::Kind::kBlock, down,
                     down + util::uniform(rng, 1.0, 10.0),
                     std::vector<double>(kResources, 1.0)});
    }
    if (util::uniform01(rng) < 0.35) {
      // Kill the reservation just made: cancel its tail from a point
      // inside the interval (replayed with the exact committed end).
      ops.push_back({Op::Kind::kCancel, static_cast<double>(job_op),
                     now + util::uniform(rng, 0.1, 1.0),
                     ops[job_op].demand});
    }
  }
  return ops;
}

// --- Driver ---------------------------------------------------------------

struct WorkloadResult {
  std::string name;
  std::size_t ops;
  double legacy_ms;
  double rewrite_ms;
  bool identical;
};

WorkloadResult run_workload(const std::string& name,
                            const std::vector<Op>& ops) {
  LegacyProfile legacy(kResources);
  ResourceProfile rewrite(kResources);
  double legacy_sum = 0.0;
  double rewrite_sum = 0.0;
  WorkloadResult r;
  r.name = name;
  r.ops = ops.size();
  r.legacy_ms = replay(legacy, ops, /*prune=*/false, &legacy_sum);
  r.rewrite_ms = replay(rewrite, ops, /*prune=*/true, &rewrite_sum);
  r.identical = legacy_sum == rewrite_sum;
  std::printf("%-16s ops=%-7zu legacy=%9.2f ms  rewrite=%9.2f ms  "
              "speedup=%6.2fx  placements %s\n",
              name.c_str(), r.ops, r.legacy_ms, r.rewrite_ms,
              r.legacy_ms / r.rewrite_ms,
              r.identical ? "IDENTICAL" : "DIVERGED");
  return r;
}

int run() {
  print_header("micro_profile",
               "ResourceProfile rewrite (flat SoA timeline) hot paths");
  const std::uint64_t seed = util::bench_seed();
  std::vector<WorkloadResult> results;
  results.push_back(
      run_workload("dense_backfill", dense_backfill_ops(scaled(10000), seed)));
  results.push_back(
      run_workload("long_horizon", long_horizon_ops(scaled(20000), seed + 1)));
  results.push_back(
      run_workload("fault_churn", fault_churn_ops(scaled(12000), seed + 2)));

  const std::string path = results_json_path("profile");
  // micro_kernels co-owns this file: splice its per-kernel rows back in so
  // running the workload bench never discards the kernel trajectory.
  const std::string kernels = read_json_section(path, "kernels");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 2,\n"
                 "  \"bench\": \"micro_profile\",\n"
                 "  \"config\": {\"seed\": %llu, \"scale\": %s},\n"
                 "  %s,\n"
                 "  \"workloads\": [\n",
                 static_cast<unsigned long long>(seed),
                 json_num(util::bench_scale()).c_str(),
                 provenance_json().c_str());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const WorkloadResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ops\": %zu, "
                   "\"legacy_ms\": %.3f, \"rewrite_ms\": %.3f, "
                   "\"speedup\": %.2f, \"identical\": %s}%s\n",
                   r.name.c_str(), r.ops, r.legacy_ms, r.rewrite_ms,
                   r.legacy_ms / r.rewrite_ms, r.identical ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fputs("  ]", f);
    if (!kernels.empty()) {
      std::fprintf(f, ",\n  \"kernels\": %s", kernels.c_str());
    }
    std::fputs("\n}\n", f);
    std::fclose(f);
    std::printf("json summary written to %s\n", path.c_str());
  }

  for (const WorkloadResult& r : results) {
    if (!r.identical) {
      std::printf("FAIL: %s diverged from the legacy implementation\n",
                  r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace mris::bench

int main() { return mris::bench::run(); }
