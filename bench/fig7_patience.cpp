// Figure 7: "exercising patience" — the synthetic adversarial input of
// Sec 7.5.4.  One machine; a full-machine blocker of 14 time units released
// at t=0; ~2500 small jobs released shortly after.  PQ / TETRIS / BF-EXEC
// all commit the blocker immediately; MRIS defers it and runs the small
// jobs first, achieving roughly 3x lower AWCT.  CPU usage over time is
// rendered for each scheduler, mirroring the paper's schedule pictures.
#include "bench_common.hpp"

#include "core/metrics.hpp"

using namespace mris;

int main() {
  bench::print_header("fig7_patience", "Figure 7 (Sec 7.5.4)");
  const std::size_t small_jobs = bench::scaled(2500) - 1;
  const Instance inst = trace::make_patience_instance(
      small_jobs, /*num_resources=*/5, /*blocker_duration=*/14.0,
      util::bench_seed());

  const std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Mris(),
      exp::SchedulerSpec::Pq(Heuristic::kWsjf),
      exp::SchedulerSpec::Tetris(),
      exp::SchedulerSpec::BfExec(),
  };

  std::vector<std::vector<std::string>> table = {
      {"scheduler", "AWCT", "blocker start", "makespan", "vs MRIS"}};
  double mris_awct = 0.0;
  std::vector<exp::Series> series;
  Time t_end = 0.0;

  struct Run {
    exp::SchedulerSpec spec;
    exp::EvalResult result;
    Schedule schedule;
  };
  std::vector<Run> runs;
  for (const auto& spec : lineup) {
    Run run{spec, {}, {}};
    run.result = exp::evaluate_with_schedule(inst, spec, run.schedule);
    t_end = std::max(t_end, run.result.makespan);
    runs.push_back(std::move(run));
  }

  for (const Run& run : runs) {
    if (mris_awct == 0.0) mris_awct = run.result.awct;
    table.push_back({run.spec.display_name(),
                     exp::format_num(run.result.awct),
                     exp::format_num(run.schedule.start_time(0)),
                     exp::format_num(run.result.makespan),
                     exp::format_num(run.result.awct / mris_awct)});
    exp::Series s{run.spec.display_name(), {}, {}, {}};
    for (const auto& sample :
         usage_over_time(inst, run.schedule, 0, trace::kCpu)) {
      s.x.push_back(sample.t);
      s.y.push_back(sample.usage);
    }
    series.push_back(std::move(s));
  }

  std::printf("%s\n", exp::render_table(table).c_str());
  std::printf("CPU usage over time (0 .. %s) per scheduler:\n",
              exp::format_num(t_end).c_str());
  for (const Run& run : runs) {
    const auto samples = usage_over_time(inst, run.schedule, 0, trace::kCpu);
    std::printf("%s", exp::render_usage_strip(samples, t_end,
                                              run.spec.display_name())
                          .c_str());
  }

  exp::PlotOptions opts;
  opts.title = "Fig 7: CPU usage over time (machine 0)";
  opts.xlabel = "time";
  opts.ylabel = "CPU usage";
  bench::emit("fig7_patience", series, opts, {{"see table above"}});
  return 0;
}
