// Figure 6: effect of the number of resource types on AWCT
// (M = 20 / N = 64000 in the paper; M = 2 / N = 3000 scaled to preserve
// the paper's overloaded regime).  New synthetic resources copy the CPU
// demand of a uniformly sampled job (Sec 7.5.3).
//
// Paper shape: all schedulers degrade as R grows from 4 to 20, MRIS least
// (+17% vs TETRIS's +80%).  Measured shape at laptop scale: MRIS retains
// the lowest absolute AWCT at every R and TETRIS degrades the most of the
// PQ family, but MRIS's relative increase is larger than the paper's —
// see EXPERIMENTS.md.
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("fig6_resource_scaling", "Figure 6 (Sec 7.5.3)");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(3000);
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 2));
  const std::vector<std::size_t> resource_counts = {4, 8, 12, 16, 20};
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xf69u);

  const std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Mris(),
      exp::SchedulerSpec::Pq(Heuristic::kWsjf),
      exp::SchedulerSpec::Tetris(),
      exp::SchedulerSpec::BfExec(),
  };

  std::vector<exp::Series> series;
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});
  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"R"};
    for (const auto& spec : lineup) header.push_back(spec.display_name());
    table.push_back(std::move(header));
  }

  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
  for (std::size_t R : resource_counts) {
    // Augment per replication with a rep-specific RNG so the synthetic
    // resources differ across sampled job sets.
    auto factory = [&, R](std::size_t rep) {
      trace::Workload sampled =
          trace::downsample(base, factor, offsets.at(rep));
      util::Xoshiro256 rng(util::bench_seed() * 977 + rep * 131 + R);
      return to_instance(
          trace::augment_resources(sampled, R, trace::kCpu, rng), machines);
    };
    const auto points = exp::replicate_lineup(reps, factory, lineup);

    std::vector<std::string> row = {std::to_string(R)};
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      row.push_back(exp::format_ci(points[s].awct));
      series[s].x.push_back(static_cast<double>(R));
      series[s].y.push_back(points[s].awct.mean);
      series[s].ci.push_back(points[s].awct.half_width);
    }
    table.push_back(std::move(row));
  }

  // Degradation summary (the paper's 17% vs 80% numbers).
  std::printf("\nAWCT increase from R=%zu to R=%zu:\n", resource_counts.front(),
              resource_counts.back());
  for (const auto& s : series) {
    std::printf("  %-12s %+.1f%%\n", s.name.c_str(),
                100.0 * (s.y.back() / s.y.front() - 1.0));
  }

  exp::PlotOptions opts;
  opts.title = "Fig 6: AWCT vs number of resource types";
  opts.xlabel = "resource types R";
  opts.ylabel = "AWCT";
  bench::emit("fig6_resource_scaling", series, opts, table);
  return 0;
}
