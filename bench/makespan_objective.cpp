// Lemma 6.9 / Remark 4: MRIS simultaneously optimizes AWCT and makespan —
// it is 8R(1+eps)-competitive for makespan too.  This bench measures every
// scheduler's makespan against the instance lower bound
// max(V/(RM), max_j(r_j + p_j)) (Lemma 6.2 + the trivial per-job bound) on
// trace workloads across load levels.
#include "bench_common.hpp"

#include "core/metrics.hpp"
#include "sched/optimal.hpp"
#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("makespan_objective", "Lemma 6.9 / Remark 4");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(2000);
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xa69u);
  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);

  const std::vector<exp::SchedulerSpec> lineup = exp::comparison_lineup();

  std::vector<std::vector<std::string>> table = {
      {"M", "scheduler", "makespan (mean ±ci)", "x over lower bound"}};
  std::vector<exp::Series> series;
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});

  for (int machines : {1, 2, 4, 8}) {
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    // Mean lower bound across replications.
    double lb_sum = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      lb_sum += makespan_lower_bound(factory(rep));
    }
    const double lb = lb_sum / static_cast<double>(reps);

    const auto points = exp::replicate_lineup(reps, factory, lineup);
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      table.push_back({std::to_string(machines), lineup[s].display_name(),
                       exp::format_ci(points[s].makespan),
                       exp::format_num(points[s].makespan.mean / lb)});
      series[s].x.push_back(static_cast<double>(machines));
      series[s].y.push_back(points[s].makespan.mean / lb);
    }
  }

  exp::PlotOptions opts;
  opts.title = "Makespan over lower bound vs machines";
  opts.xlabel = "machines M";
  opts.ylabel = "makespan / lower bound";
  opts.log_x = true;
  bench::emit("makespan_objective", series, opts, table);
  std::printf(
      "expected: every ratio stays far below the proven 8R(1+eps) = %g\n"
      "worst case (R=4, eps=0.5); MRIS's gap to the PQ family narrows as\n"
      "load grows.\n",
      8.0 * 4 * 1.5);
  return 0;
}
