// Daemon decision-latency bench (docs/DAEMON.md): sustained decisions/sec
// and tail decision latency of serve_stream() under Poisson overload —
// arrivals drawn as a Poisson process whose rate exceeds the cluster's
// service capacity by MRIS_OVERLOAD (default 2x), so the pending backlog
// grows for the whole run and every admission pays the worst-case
// bookkeeping cost.
//
// Arms: MRIS plain, MRIS + incremental CADP (sched/mris.hpp `incremental`),
// both again with full durability (write-ahead admission journal + engine
// snapshots, fsync per admission), and PQ-WSJF as the cheap-decision
// baseline.  Each arm runs MRIS_REPS times; decisions/sec is the best rep,
// latency percentiles come from that rep's per-admission samples.
//
// Every row is cross-checked against a batch run_online() of the identical
// workload: the streaming placement checksum must match the batch checksum
// byte-for-byte, and any divergence fails the bench (exit 1) — this is the
// CI soak job's correctness gate.  MRIS_SOAK_MAX_P99_US, when set, further
// gates the mris rows' p99 (exit 1 on regression past the bound).
//
// Results go to results/BENCH_daemon.json.  Like BENCH_recovery.json it
// carries wall-clock timings, so it is EXCLUDED from the determinism CI
// byte-diff; checksums and job counts are seed-deterministic regardless.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/schedulers.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

using namespace mris;

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

/// Rewrites releases as a Poisson arrival process at `overload` times the
/// cluster's service capacity: with total work volume V on M machines, the
/// busy horizon is V / M, arrivals land in V / (M * overload) — the queue
/// grows for the entire stream.  Jobs end up in canonical streamed form
/// (release order, ids = seq).
Instance poisson_overload(const Instance& inst, double overload,
                          std::uint64_t seed) {
  std::vector<Job> jobs = inst.jobs();
  double volume = 0.0;
  for (const Job& j : jobs) volume += j.volume();
  const double horizon =
      volume / (static_cast<double>(inst.num_machines()) * overload);
  const double mean_gap = horizon / static_cast<double>(jobs.size());
  util::Xoshiro256 rng(seed ^ 0x706f6973736f6eULL);  // "poisson"
  double t = 0.0;
  for (Job& j : jobs) {
    t += -mean_gap * std::log1p(-util::uniform01(rng));  // Exp(mean_gap)
    j.release = t;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  return Instance(std::move(jobs), inst.num_machines(), inst.num_resources());
}

struct ArmResult {
  std::string name;
  std::string scheduler;
  bool durable = false;
  std::size_t jobs = 0;
  double decisions_per_sec = 0.0;
  serve::LatencySummary latency;  // from the best (fastest) rep
  std::uint64_t streaming_checksum = 0;
  std::uint64_t batch_checksum = 0;
  bool identical = false;
};

std::uint64_t batch_checksum(const Instance& inst,
                             const exp::SchedulerSpec& spec) {
  serve::PlacementChecksum checksum;
  RunOptions opts;
  opts.on_record = [&checksum](const EventRecord& rec) {
    if (rec.kind == EventRecord::Kind::kCommit) {
      checksum.note(rec.job, rec.machine, rec.start);
    }
  };
  const std::unique_ptr<OnlineScheduler> s = exp::make_scheduler(spec, inst);
  run_online(inst, *s, opts);
  return checksum.value();
}

std::string state_root() {
  if (const char* dir = std::getenv("MRIS_BENCH_STATE_DIR")) return dir;
  std::error_code ec;
  if (std::filesystem::is_directory("/dev/shm", ec)) return "/dev/shm";
  return std::filesystem::temp_directory_path().string();
}

ArmResult run_arm(const std::string& name, const Instance& inst,
                  const std::string& scheduler, bool durable) {
  ArmResult r;
  r.name = name;
  r.scheduler = scheduler;
  r.durable = durable;
  r.jobs = inst.num_jobs();

  const exp::SchedulerSpec spec = exp::parse_scheduler_spec(scheduler);
  r.batch_checksum = batch_checksum(inst, spec);

  const std::string bytes = serve::encode_stream(
      inst.jobs(), static_cast<std::uint32_t>(inst.num_resources()));
  const std::string dir =
      (std::filesystem::path(state_root()) / ("mris_bench_daemon_" + name))
          .string();

  r.identical = true;
  for (std::size_t rep = 0; rep < util::bench_reps(); ++rep) {
    if (durable) {
      std::filesystem::remove_all(dir);  // fresh run, not resume
    }
    serve::ServeOptions opts;
    opts.num_machines = inst.num_machines();
    opts.num_resources = inst.num_resources();
    opts.make_scheduler = [&spec, &inst] {
      return exp::make_scheduler(spec, inst);
    };
    if (durable) opts.state_dir = dir;
    std::istringstream in(bytes);
    const auto t0 = std::chrono::steady_clock::now();
    const serve::ServeResult res = serve::serve_stream(in, opts);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double dps =
        secs > 0.0 ? static_cast<double>(res.jobs) / secs : 0.0;
    if (dps > r.decisions_per_sec) {
      r.decisions_per_sec = dps;
      r.latency = res.latency;
    }
    r.streaming_checksum = res.placement_checksum;
    if (res.placement_checksum != r.batch_checksum) r.identical = false;
  }
  if (durable) std::filesystem::remove_all(dir);

  std::printf("%-16s %-9s %-7s %8.0f dec/s  p50=%7.1fus p99=%8.1fus "
              "max=%9.1fus  checksum %s\n",
              r.name.c_str(), r.scheduler.c_str(),
              r.durable ? "durable" : "plain", r.decisions_per_sec,
              r.latency.p50_us, r.latency.p99_us, r.latency.max_us,
              r.identical ? "IDENTICAL" : "DIVERGED");
  return r;
}

int run() {
  bench::print_header("daemon_latency",
                      "serve_stream decision latency (docs/DAEMON.md)");
  const double overload = env_double("MRIS_OVERLOAD", 2.0);
  const Instance inst = poisson_overload(
      to_instance(bench::base_workload(bench::scaled(6000)), /*machines=*/8),
      overload, util::bench_seed());
  std::printf("jobs=%zu machines=%d overload=%.1fx\n\n", inst.num_jobs(),
              inst.num_machines(), overload);

  std::vector<ArmResult> results;
  results.push_back(run_arm("mris_plain", inst, "mris", false));
  results.push_back(run_arm("mris_inc_plain", inst, "mris-inc", false));
  results.push_back(run_arm("mris_durable", inst, "mris", true));
  results.push_back(run_arm("mris_inc_durable", inst, "mris-inc", true));
  results.push_back(run_arm("pq_wsjf_plain", inst, "pq-wsjf", false));

  const std::string path = bench::results_json_path("daemon");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 2,\n"
                 "  \"bench\": \"daemon_latency\",\n"
                 "  \"config\": {\"seed\": %llu, \"reps\": %zu, "
                 "\"scale\": %s, \"overload\": %s},\n"
                 "  %s,\n"
                 "  \"arms\": [\n",
                 static_cast<unsigned long long>(util::bench_seed()),
                 util::bench_reps(),
                 bench::json_num(util::bench_scale()).c_str(),
                 bench::json_num(overload).c_str(),
                 bench::provenance_json().c_str());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ArmResult& r = results[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"scheduler\": \"%s\", \"durable\": %s, "
          "\"jobs\": %zu, \"decisions_per_sec\": %.0f, "
          "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
          "\"max_us\": %.2f, \"streaming_checksum\": \"%016llx\", "
          "\"batch_checksum\": \"%016llx\", \"identical\": %s}%s\n",
          r.name.c_str(), r.scheduler.c_str(), r.durable ? "true" : "false",
          r.jobs, r.decisions_per_sec, r.latency.mean_us, r.latency.p50_us,
          r.latency.p99_us, r.latency.max_us,
          static_cast<unsigned long long>(r.streaming_checksum),
          static_cast<unsigned long long>(r.batch_checksum),
          r.identical ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    std::printf("\njson summary written to %s\n", path.c_str());
  }

  int rc = 0;
  for (const ArmResult& r : results) {
    if (!r.identical) {
      std::fprintf(stderr,
                   "FAIL: %s streaming checksum diverged from batch\n",
                   r.name.c_str());
      rc = 1;
    }
  }
  const double p99_bound = env_double("MRIS_SOAK_MAX_P99_US", 0.0);
  if (p99_bound > 0.0) {
    for (const ArmResult& r : results) {
      if (r.scheduler != "pq-wsjf" && r.latency.p99_us > p99_bound) {
        std::fprintf(stderr, "FAIL: %s p99 %.1fus exceeds bound %.1fus\n",
                     r.name.c_str(), r.latency.p99_us, p99_bound);
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace

int main() { return run(); }
