// Empirical counterpart of Theorem 6.8 at trace scale: every scheduler's
// AWCT divided by a *provable lower bound* on the optimal AWCT (the fluid
// WSPT relaxation of sched/bounds.hpp), across load levels.  Ratios are
// conservative (the true competitive ratio is at most what is printed) and
// must stay far below MRIS's 8R(1+eps) certificate.
#include "bench_common.hpp"

#include "sched/bounds.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace mris;

int main() {
  bench::print_header("empirical_ratio", "Theorem 6.8, empirically");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(2000);
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xe49u);
  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);

  const std::vector<exp::SchedulerSpec> lineup = exp::comparison_lineup();

  std::vector<std::vector<std::string>> table = {
      {"M", "scheduler", "AWCT / lower bound", "certificate 8R(1+eps)"}};
  std::vector<exp::Series> series;
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});

  for (int machines : {1, 2, 4, 8}) {
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    // Ratio per replication (bound depends on the sampled instance).
    std::vector<std::vector<double>> ratios(lineup.size(),
                                            std::vector<double>(reps));
    util::global_pool().parallel_for(reps, [&](std::size_t rep) {
      const Instance inst = factory(rep);
      const double lb = awct_fluid_lower_bound(inst);
      for (std::size_t s = 0; s < lineup.size(); ++s) {
        ratios[s][rep] = exp::evaluate(inst, lineup[s]).awct / lb;
      }
    });
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const auto ci = util::mean_ci95(ratios[s]);
      table.push_back({std::to_string(machines), lineup[s].display_name(),
                       exp::format_ci(ci),
                       s == 0 ? exp::format_num(8.0 * 4 * 1.5) : ""});
      series[s].x.push_back(static_cast<double>(machines));
      series[s].y.push_back(ci.mean);
      series[s].ci.push_back(ci.half_width);
    }
  }

  exp::PlotOptions opts;
  opts.title = "AWCT over lower bound vs machines (R=4)";
  opts.xlabel = "machines M";
  opts.ylabel = "AWCT / LB";
  opts.log_x = true;
  bench::emit("empirical_ratio", series, opts, table);
  std::printf(
      "expected: all ratios far below the 8R(1+eps)=48 certificate; MRIS\n"
      "closest to the bound under heavy load (M=1), PQ-family closest when\n"
      "capacity is plentiful.\n");
  return 0;
}
