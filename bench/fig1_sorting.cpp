// Figure 1: AWCT of MRIS under different sorting heuristics, M = 20
// machines in the paper (M = 4 at laptop default scale, same load/machine).
//
// Expected shape (Sec 7.3): WSJF and WSVF best, (W)SDF middling, ERF worst;
// weighted vs unweighted variants nearly identical (small weight range).
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("fig1_sorting", "Figure 1 (Sec 7.3)");
  const std::size_t reps = util::bench_reps();
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 4));
  const std::vector<std::size_t> n_values = {
      bench::scaled(500), bench::scaled(1000), bench::scaled(2000),
      bench::scaled(4000)};
  const std::size_t base_jobs = n_values.back() * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xf19u);

  std::vector<exp::Series> series;
  for (Heuristic h : all_heuristics()) {
    series.push_back({heuristic_name(h), {}, {}, {}});
  }

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"N"};
    for (Heuristic h : all_heuristics()) header.push_back(heuristic_name(h));
    table.push_back(std::move(header));
  }

  for (std::size_t n : n_values) {
    const std::size_t factor = base_jobs / n;
    const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);

    std::vector<exp::SchedulerSpec> lineup;
    for (Heuristic h : all_heuristics()) {
      lineup.push_back(exp::SchedulerSpec::Mris(h));
    }
    const auto points = exp::replicate_lineup(reps, factory, lineup);

    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      row.push_back(exp::format_ci(points[s].awct));
      series[s].x.push_back(static_cast<double>(n));
      series[s].y.push_back(points[s].awct.mean);
      series[s].ci.push_back(points[s].awct.half_width);
    }
    table.push_back(std::move(row));
  }

  exp::PlotOptions opts;
  opts.title = "Fig 1: AWCT of MRIS by sorting heuristic";
  opts.xlabel = "number of jobs N";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  bench::emit("fig1_sorting", series, opts, table);
  return 0;
}
