// Engine-scale benchmark: the sharded epoch/barrier engine (sim/shard.hpp,
// docs/SHARDING.md) against the classic single-loop engine on a
// million-job epoch-batched trace — the workload shape the MRIS algorithm
// actually produces (arrivals stream in continuously, placements happen in
// gamma_k wakeup batches against a deep pending backlog).
//
// What the sharded engine wins on this shape, threads aside:
//   * arrivals live in a sorted flat array behind a cursor instead of
//     churning a binary heap with 10^6 entries (log N per event);
//   * completions live in small per-shard heaps;
//   * the pending queue uses O(1) lazy removal instead of an O(P) erase
//     per commit — against a multi-thousand-job backlog the single-loop
//     engine pays ~P element moves per placement;
//   * per-shard calendar pruning and arena-allocated notification
//     payloads keep the hot loop allocation-free.
//
// Every row is validated: placements must be byte-identical (checksummed)
// across the single-loop engine and EVERY (shards, threads) configuration
// — the bench FAILS (exit code) on any divergence.  Wall-clock numbers
// are informational; CI never asserts on them.
// Results go to results/BENCH_engine_scale.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/mris.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace mris::bench {
namespace {

/// Wakeup-driven epoch scheduler: every Delta time units it sweeps the
/// pending backlog and places each job on machine (id mod M) at that
/// machine's earliest fit — the engine-stress analogue of MRIS's gamma_k
/// batching with the knapsack replaced by a constant-time rule, so the
/// bench measures the ENGINE, not the placement policy.
class EpochGreedy : public OnlineScheduler {
 public:
  explicit EpochGreedy(Time delta) : delta_(delta) {}
  std::string name() const override { return "epoch-greedy"; }

  void on_start(EngineContext& ctx) override {
    ctx.schedule_wakeup(ctx.now() + delta_);
    armed_ = true;
  }

  void on_arrival(EngineContext& ctx, JobId) override {
    if (!armed_) {
      ctx.schedule_wakeup(ctx.now() + delta_);
      armed_ = true;
    }
  }

  void on_wakeup(EngineContext& ctx) override {
    batch_.assign(ctx.pending().begin(), ctx.pending().end());
    const int machines = ctx.num_machines();
    for (const JobId id : batch_) {
      const MachineId m = static_cast<MachineId>(id % machines);
      const Time s = ctx.earliest_fit_on(id, m, ctx.earliest_start(id));
      ctx.try_commit(id, m, s);
    }
    if (!ctx.pending().empty()) {
      ctx.schedule_wakeup(ctx.now() + delta_);
    } else {
      armed_ = false;
    }
  }

 private:
  Time delta_;
  bool armed_ = false;
  std::vector<JobId> batch_;
};

/// Epoch-batched stream: `jobs` short tasks arriving over `span` time
/// units on `machines` machines — high arrival rate, so thousands of jobs
/// queue up between consecutive wakeups.
Instance stream_instance(std::size_t jobs, int machines, Time span,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  InstanceBuilder b(machines, 2);
  Time release = 0.0;
  const Time mean_gap = span / static_cast<double>(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    release += util::uniform(rng, 0.0, 2.0 * mean_gap);
    b.add(release, util::uniform(rng, 0.02, 0.17),
          util::uniform(rng, 0.5, 4.0),
          {util::uniform(rng, 0.1, 0.5), util::uniform(rng, 0.1, 0.5)});
  }
  return b.build();
}

/// FNV-1a over every placement — byte-identical schedules, equal checksum.
std::uint64_t schedule_checksum(const Schedule& s) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t i = 0; i < s.num_jobs(); ++i) {
    const Assignment& a = s.assignment(static_cast<JobId>(i));
    mix(static_cast<std::uint64_t>(a.machine));
    double start = a.start;
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof start);
    __builtin_memcpy(&bits, &start, sizeof bits);
    mix(bits);
  }
  return h;
}

struct Row {
  std::string name;
  std::string engine;
  int shards = 0;
  int threads = 1;
  std::size_t jobs = 0;
  double wall_ms = 0.0;
  double jobs_per_sec = 0.0;
  bool identical = true;
  double speedup = 1.0;
};

Row run_row(const std::string& name, const Instance& inst,
            OnlineScheduler& sched, int shards, int threads,
            std::uint64_t baseline_sum, double baseline_ms,
            std::uint64_t* sum_out = nullptr) {
  RunOptions opt;
  opt.shards = shards;
  opt.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = run_online(inst, sched, opt);
  const auto t1 = std::chrono::steady_clock::now();
  Row row;
  row.name = name;
  row.engine = shards > 0 ? "sharded" : "single-loop";
  row.shards = shards;
  row.threads = threads;
  row.jobs = inst.num_jobs();
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.jobs_per_sec =
      static_cast<double>(inst.num_jobs()) / (row.wall_ms / 1000.0);
  const std::uint64_t sum = schedule_checksum(r.schedule);
  if (sum_out != nullptr) *sum_out = sum;
  row.identical = baseline_sum == 0 || sum == baseline_sum;
  row.speedup = baseline_ms > 0.0 ? baseline_ms / row.wall_ms : 1.0;
  std::printf("%-14s engine=%-11s S=%d T=%d jobs=%-8zu %9.1f ms  "
              "%10.0f jobs/s  speedup=%5.2fx  placements %s\n",
              row.name.c_str(), row.engine.c_str(), row.shards, row.threads,
              row.jobs, row.wall_ms, row.jobs_per_sec, row.speedup,
              row.identical ? "IDENTICAL" : "DIVERGED");
  return row;
}

int run() {
  print_header("engine_scale",
               "sharded epoch/barrier engine vs single event loop");

  std::vector<Row> rows;

  // --- main trajectory: epoch-batched million-job stream ------------------
  // Delta matches the gamma_k spacing of Algorithm 1 at this time scale
  // (epochs double geometrically, so mature epochs are tens of time units
  // wide): ~2000 jobs/time-unit x Delta = a 32k-job backlog per wakeup,
  // which is where the single-loop engine's O(P)-per-commit pending erase
  // turns quadratic while the sharded engine's lazy removal stays O(1).
  constexpr Time kDelta = 16.0;
  const std::size_t jobs = scaled(1000000);
  const Instance inst =
      stream_instance(jobs, /*machines=*/64, /*span=*/500.0,
                      util::bench_seed() ^ 0xe5ca1eull);
  std::printf("stream workload: %zu jobs / 64 machines / R=2\n",
              inst.num_jobs());

  EpochGreedy base_sched(kDelta);
  std::uint64_t base_sum = 0;
  const Row legacy =
      run_row("legacy", inst, base_sched, 0, 1, 0, 0.0, &base_sum);
  rows.push_back(legacy);
  for (const auto& [shards, threads] :
       {std::pair{1, 1}, {2, 1}, {4, 1}, {8, 1}, {8, 2}, {8, 4}}) {
    EpochGreedy s(kDelta);
    rows.push_back(run_row("sharded-" + std::to_string(shards) + "x" +
                               std::to_string(threads),
                           inst, s, shards, threads, base_sum,
                           legacy.wall_ms));
  }

  // --- MRIS row: the paper's scheduler on a smaller trace -----------------
  const Instance mris_inst = stream_instance(
      scaled(20000), /*machines=*/16, /*span=*/200.0,
      util::bench_seed() ^ 0x3715ull);
  MrisScheduler mris_legacy;
  std::uint64_t mris_sum = 0;
  const Row mris_base = run_row("mris-legacy", mris_inst, mris_legacy, 0, 1,
                                0, 0.0, &mris_sum);
  rows.push_back(mris_base);
  {
    MrisScheduler sharded;
    rows.push_back(run_row("mris-8x2", mris_inst, sharded, 8, 2, mris_sum,
                           mris_base.wall_ms));
  }

  const std::string path = results_json_path("engine_scale");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 2,\n"
                 "  \"bench\": \"engine_scale\",\n"
                 "  \"config\": {\"seed\": %llu, \"scale\": %s},\n"
                 "  %s,\n"
                 "  \"workloads\": [\n",
                 static_cast<unsigned long long>(util::bench_seed()),
                 json_num(util::bench_scale()).c_str(),
                 provenance_json().c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"engine\": \"%s\", \"shards\": %d, "
          "\"threads\": %d, \"jobs\": %zu, \"wall_ms\": %.1f, "
          "\"jobs_per_sec\": %.0f, \"speedup_vs_legacy\": %.2f, "
          "\"identical\": %s}%s\n",
          r.name.c_str(), r.engine.c_str(), r.shards, r.threads, r.jobs,
          r.wall_ms, r.jobs_per_sec, r.speedup,
          r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    std::printf("json summary written to %s\n", path.c_str());
  }

  for (const Row& r : rows) {
    if (!r.identical) {
      std::printf("FAIL: %s diverged from the single-loop engine\n",
                  r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace mris::bench

int main() { return mris::bench::run(); }
