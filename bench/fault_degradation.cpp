// Robustness sweep: checkpoint/partial-restart versus restart-from-scratch
// under machine outages, stragglers, and probabilistic job failures (no
// paper figure — the fault model is this repo's extension; see
// docs/FAULTS.md and DESIGN.md "Fault model & recovery semantics").
//
// Three sweeps, all over the same azure-like workload and paired fault
// plans (identical outages/stretches/failure draws per replication, so the
// recovery policy is the only difference between arms):
//
//   1. MTBF sweep (harsh -> mild, plus a fault-free point at +inf):
//      AWCT, wasted work, and checkpoint/restore overhead for a
//      restart-from-scratch arm and a checkpointing arm, for MRIS and
//      PQ-WSJF.  Checkpointing salvages most of a killed attempt, so its
//      wasted work sits strictly below the scratch arm at every finite
//      MTBF.
//   2. Checkpoint-interval sweep (fixed harsh MTBF, periodic policy):
//      coarser grids salvage less (wasted work rises); the restore
//      overhead paid per resume falls with fewer resumed marks.
//   3. Restore-overhead sweep (fixed harsh MTBF): as the cost of loading a
//      checkpoint grows, the AWCT of the checkpointing arm climbs past the
//      (overhead-independent) scratch arm — the crossover that decides
//      when checkpointing pays off.
//
// Every faulty run is checked with the outage- and checkpoint-aware fault
// validator; a violation marks the run failed rather than aborting the
// sweep.
//
// Flags (defaults reproduce the committed CSV; run with no flags for the
// deterministic CI configuration):
//   --checkpoint-policy none|periodic|fraction   checkpointing arm policy
//   --checkpoint-interval T    periodic grid step (work units)
//   --checkpoint-fraction f    fraction-of-p_j grid step, in (0,1)
//   --restore-overhead T       resume cost prepended per checkpoint restore
//   --help                     print usage and exit
#include "bench_common.hpp"

#include <cstdlib>
#include <limits>

#include "sim/checkpoint/checkpoint.hpp"
#include "sim/faults.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace mris;

namespace {

constexpr double kMttr = 50.0;

/// The checkpointing arm configured by the flags.
struct ArmConfig {
  CheckpointPolicy::Kind kind = CheckpointPolicy::Kind::kPeriodic;
  double interval = 25.0;
  double fraction = 0.10;
  double restore = 2.0;

  CheckpointPolicy policy(double restore_override) const {
    switch (kind) {
      case CheckpointPolicy::Kind::kPeriodic:
        return CheckpointPolicy::Periodic(interval, restore_override);
      case CheckpointPolicy::Kind::kFraction:
        return CheckpointPolicy::FractionOfP(fraction, restore_override);
      case CheckpointPolicy::Kind::kNone:
      default:
        return CheckpointPolicy::None();
    }
  }
  CheckpointPolicy policy() const { return policy(restore); }
  const char* name() const { return checkpoint_kind_name(kind); }
};

void print_usage() {
  std::printf(
      "usage: fault_degradation [--checkpoint-policy none|periodic|fraction]\n"
      "                         [--checkpoint-interval T]"
      " [--checkpoint-fraction f]\n"
      "                         [--restore-overhead T] [--help]\n"
      "\n"
      "  --checkpoint-policy    policy of the checkpointing arm"
      " (default periodic);\n"
      "                         'none' degenerates to a second"
      " restart-from-scratch arm\n"
      "  --checkpoint-interval  periodic checkpoint grid step in work units"
      " (default 25)\n"
      "  --checkpoint-fraction  fraction-of-p_j grid step in (0,1)"
      " (default 0.1)\n"
      "  --restore-overhead     time prepended to every resumed attempt"
      " (default 2)\n"
      "\n"
      "Scale knobs come from the environment: MRIS_BENCH_SCALE, MRIS_SEED,\n"
      "MRIS_REPS (see bench_common.hpp).  Output lands in\n"
      "results/results_fault_degradation.csv.\n");
}

/// Base fault spec shared by every arm; only `checkpoint` differs.
FaultSpec base_fault_spec(double mtbf) {
  FaultSpec spec;
  spec.mtbf = mtbf;
  spec.mttr = kMttr;
  spec.straggler_prob = 0.05;
  spec.stretch_lo = 1.5;
  spec.stretch_hi = 3.0;
  spec.failure_prob = 0.02;
  spec.max_retries = 3;
  spec.retry_backoff = 1.0;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.get_bool("help")) {
    print_usage();
    return 0;
  }
  ArmConfig arm;
  try {
    arm.kind = parse_checkpoint_kind(
        flags.get("checkpoint-policy", "periodic"));
    arm.interval = flags.get_double("checkpoint-interval", arm.interval);
    arm.fraction = flags.get_double("checkpoint-fraction", arm.fraction);
    arm.restore = flags.get_double("restore-overhead", arm.restore);
    arm.policy().validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fault_degradation: %s\n", e.what());
    return 2;
  }
  if (const auto unknown = flags.unconsumed(); !unknown.empty()) {
    std::fprintf(stderr, "fault_degradation: unknown flag --%s (--help?)\n",
                 unknown.front().c_str());
    return 2;
  }

  bench::print_header("fault_degradation",
                      "robustness extension (docs/FAULTS.md)");
  std::printf("checkpoint arm: %s interval=%g fraction=%g restore=%g\n",
              arm.name(), arm.interval, arm.fraction, arm.restore);
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(1000);
  const int machines = 4;
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xfa17u);
  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
  const auto factory =
      bench::downsample_factory(base, factor, offsets, machines);

  // A fault factory for one (MTBF, policy) arm.  The plan seed depends only
  // on the replication, so the scratch and checkpoint arms of a point see
  // byte-identical outages, stretches, and failure draws.
  const auto faults_for = [&](double mtbf, const CheckpointPolicy& policy) {
    return exp::FaultFactory([&factory, mtbf, policy](std::size_t rep) {
      FaultSpec spec = base_fault_spec(mtbf);
      spec.checkpoint = policy;
      // The plan must match the rep's instance (outage horizon, stretch per
      // job), so rebuild the instance here; downsampling is cheap relative
      // to the runs themselves.
      const Instance inst = factory(rep);
      return make_fault_plan(spec, inst, util::bench_seed() + 0x9e37u + rep);
    });
  };

  std::vector<exp::Series> all_series;

  // ---- Sweep 1: AWCT / wasted work / overhead vs machine MTBF ------------
  const std::vector<exp::SchedulerSpec> lineup = {exp::SchedulerSpec::Mris(),
                                                  exp::SchedulerSpec::Pq()};
  const std::vector<double> mtbf_values = {
      250.0, 1000.0, 4000.0, std::numeric_limits<double>::infinity()};
  struct Mode {
    std::string label;
    CheckpointPolicy policy;
  };
  const std::vector<Mode> modes = {{"scratch", CheckpointPolicy::None()},
                                   {arm.name(), arm.policy()}};

  std::vector<std::vector<exp::Series>> awct(modes.size()),
      wasted(modes.size()), overhead(modes.size());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (const auto& spec : lineup) {
      const std::string tag = spec.display_name() + ":" + modes[m].label;
      awct[m].push_back({"AWCT:" + tag, {}, {}, {}});
      wasted[m].push_back({"WASTED:" + tag, {}, {}, {}});
      overhead[m].push_back({"OVERHEAD:" + tag, {}, {}, {}});
    }
  }

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"MTBF"};
    for (const auto& mode : modes) {
      for (const auto& spec : lineup) {
        header.push_back("AWCT " + spec.display_name() + " " + mode.label);
      }
    }
    header.push_back("wasted scratch");
    header.push_back(std::string("wasted ") + arm.name());
    header.push_back("failed");
    table.push_back(std::move(header));
  }

  for (double mtbf : mtbf_values) {
    const bool faulty = std::isfinite(mtbf);
    const double x = faulty ? mtbf : 4.0 * mtbf_values[2];  // plot position
    std::vector<std::string> row = {
        faulty ? std::to_string(static_cast<long>(mtbf)) : "inf"};
    std::size_t failed = 0;
    std::vector<std::string> wasted_cells;
    std::vector<exp::PointResult> faultfree_points;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      // The fault-free reference point is policy-independent: run it once
      // (m == 0) and mirror the numbers into the other arm's series.
      std::vector<exp::PointResult> points;
      if (faulty || m == 0) {
        points = exp::replicate_lineup(
            reps, factory, lineup,
            faulty ? faults_for(mtbf, modes[m].policy)
                   : exp::FaultFactory{});
        if (!faulty) faultfree_points = points;
      } else {
        points = faultfree_points;
      }

      for (std::size_t s = 0; s < lineup.size(); ++s) {
        row.push_back(exp::format_ci(points[s].awct));
        failed += points[s].failed_runs;
        awct[m][s].x.push_back(x);
        awct[m][s].y.push_back(points[s].awct.mean);
        awct[m][s].ci.push_back(points[s].awct.half_width);
        wasted[m][s].x.push_back(x);
        wasted[m][s].y.push_back(points[s].wasted_work.mean);
        wasted[m][s].ci.push_back(points[s].wasted_work.half_width);
        overhead[m][s].x.push_back(x);
        overhead[m][s].y.push_back(points[s].checkpoint_overhead.mean);
        overhead[m][s].ci.push_back(points[s].checkpoint_overhead.half_width);
      }
      wasted_cells.push_back(exp::format_ci(points[0].wasted_work));
    }
    row.insert(row.end(), wasted_cells.begin(), wasted_cells.end());
    row.push_back(std::to_string(failed));
    table.push_back(std::move(row));
  }
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      all_series.push_back(awct[m][s]);
      all_series.push_back(wasted[m][s]);
      all_series.push_back(overhead[m][s]);
    }
  }

  // ---- Sweep 2: wasted work / overhead vs checkpoint interval ------------
  // Fixed harsh MTBF, periodic policy, MRIS only.  x = grid step.
  const double harsh_mtbf = mtbf_values[0];
  const std::vector<double> intervals = {5.0, 25.0, 100.0, 400.0};
  exp::Series ival_awct{"IVAL-AWCT:MRIS:periodic", {}, {}, {}};
  exp::Series ival_wasted{"IVAL-WASTED:MRIS:periodic", {}, {}, {}};
  exp::Series ival_overhead{"IVAL-OVERHEAD:MRIS:periodic", {}, {}, {}};
  std::vector<std::vector<std::string>> ival_table = {
      {"interval", "AWCT", "wasted", "overhead", "failed"}};
  const std::vector<exp::SchedulerSpec> mris_only = {
      exp::SchedulerSpec::Mris()};
  for (double interval : intervals) {
    const auto points = exp::replicate_lineup(
        reps, factory, mris_only,
        faults_for(harsh_mtbf,
                   CheckpointPolicy::Periodic(interval, arm.restore)));
    const auto& p = points[0];
    ival_awct.x.push_back(interval);
    ival_awct.y.push_back(p.awct.mean);
    ival_awct.ci.push_back(p.awct.half_width);
    ival_wasted.x.push_back(interval);
    ival_wasted.y.push_back(p.wasted_work.mean);
    ival_wasted.ci.push_back(p.wasted_work.half_width);
    ival_overhead.x.push_back(interval);
    ival_overhead.y.push_back(p.checkpoint_overhead.mean);
    ival_overhead.ci.push_back(p.checkpoint_overhead.half_width);
    ival_table.push_back({exp::format_num(interval), exp::format_ci(p.awct),
                          exp::format_ci(p.wasted_work),
                          exp::format_ci(p.checkpoint_overhead),
                          std::to_string(p.failed_runs)});
  }
  all_series.push_back(ival_awct);
  all_series.push_back(ival_wasted);
  all_series.push_back(ival_overhead);

  // ---- Sweep 3: AWCT vs restore overhead (the crossover) -----------------
  // Fixed harsh MTBF, MRIS only.  The scratch arm never pays restore
  // overhead, so it is evaluated once and drawn as a flat reference line.
  const std::vector<double> restores = {0.0, 10.0, 50.0, 200.0, 800.0};
  exp::Series xover_ckpt{std::string("XOVER-AWCT:MRIS:") + arm.name(),
                         {},
                         {},
                         {}};
  exp::Series xover_scratch{"XOVER-AWCT:MRIS:scratch", {}, {}, {}};
  const auto scratch_points = exp::replicate_lineup(
      reps, factory, mris_only,
      faults_for(harsh_mtbf, CheckpointPolicy::None()));
  std::vector<std::vector<std::string>> xover_table = {
      {"restore", std::string("AWCT ") + arm.name(), "AWCT scratch",
       "failed"}};
  for (double restore : restores) {
    const auto points = exp::replicate_lineup(
        reps, factory, mris_only, faults_for(harsh_mtbf, arm.policy(restore)));
    const auto& p = points[0];
    xover_ckpt.x.push_back(restore);
    xover_ckpt.y.push_back(p.awct.mean);
    xover_ckpt.ci.push_back(p.awct.half_width);
    xover_scratch.x.push_back(restore);
    xover_scratch.y.push_back(scratch_points[0].awct.mean);
    xover_scratch.ci.push_back(scratch_points[0].awct.half_width);
    xover_table.push_back(
        {exp::format_num(restore), exp::format_ci(p.awct),
         exp::format_ci(scratch_points[0].awct),
         std::to_string(p.failed_runs + scratch_points[0].failed_runs)});
  }
  all_series.push_back(xover_ckpt);
  all_series.push_back(xover_scratch);

  std::printf("\n-- checkpoint interval sweep (MTBF=%g, restore=%g) --\n",
              harsh_mtbf, arm.restore);
  std::printf("%s", exp::render_table(ival_table).c_str());
  std::printf("\n-- restore overhead sweep (MTBF=%g, %s arm) --\n",
              harsh_mtbf, arm.name());
  std::printf("%s", exp::render_table(xover_table).c_str());
  std::printf("\n-- AWCT vs MTBF (scratch vs %s) --\n", arm.name());

  exp::PlotOptions opts;
  opts.title = "Degradation under faults: scratch vs checkpoint recovery";
  opts.xlabel = "MTBF (inf plotted at right edge)";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  std::vector<exp::Series> plot_series;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      plot_series.push_back(awct[m][s]);
    }
  }
  std::printf("%s", exp::render_table(table).c_str());
  std::printf("\n%s", exp::render_plot(plot_series, opts).c_str());
  const std::string csv = bench::results_csv_path("fault_degradation");
  if (exp::write_series_csv(csv, all_series)) {
    std::printf("raw series written to %s\n", csv.c_str());
  }
  const std::string json = bench::results_json_path("fault_degradation");
  if (bench::write_series_json(json, "fault_degradation", all_series)) {
    std::printf("json summary written to %s\n", json.c_str());
  }
  return 0;
}
