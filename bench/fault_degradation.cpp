// Robustness sweep: graceful degradation of the full scheduler lineup under
// machine outages, stragglers, and probabilistic job failures (no paper
// figure — the fault model is this repo's extension; see DESIGN.md "Fault
// model & recovery semantics").
//
// Sweeps machine MTBF from harsh to mild at fixed MTTR, straggler mix, and
// failure probability.  For every (MTBF, scheduler) point it reports
//   * AWCT over the *actual* (faulty) execution,
//   * wasted work (volume burnt by killed/failed attempts),
//   * failed runs (validation/scheduler errors — expected to stay 0).
// Every run is checked with the outage-aware fault validator; a violation
// marks the run failed rather than aborting the sweep.
#include "bench_common.hpp"

#include <limits>

#include "sim/faults.hpp"
#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("fault_degradation", "robustness extension (DESIGN.md)");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(1000);
  const int machines = 4;
  // MTBF sweep, harsh -> mild, plus a fault-free reference point at +inf.
  const std::vector<double> mtbf_values = {250.0, 1000.0, 4000.0,
                                           std::numeric_limits<double>::infinity()};
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xfa17u);

  std::vector<exp::SchedulerSpec> lineup = exp::comparison_lineup();
  lineup.push_back(exp::SchedulerSpec::Drf());
  lineup.push_back(exp::SchedulerSpec::Hybrid());

  std::vector<exp::Series> awct_series, wasted_series;
  for (const auto& spec : lineup) {
    awct_series.push_back({"AWCT:" + spec.display_name(), {}, {}, {}});
    wasted_series.push_back({"WASTED:" + spec.display_name(), {}, {}, {}});
  }

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"MTBF"};
    for (const auto& spec : lineup) header.push_back(spec.display_name());
    header.push_back("failed");
    table.push_back(std::move(header));
  }

  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
  for (double mtbf : mtbf_values) {
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    const bool faulty = std::isfinite(mtbf);

    exp::FaultFactory make_faults;
    if (faulty) {
      make_faults = [&, mtbf](std::size_t rep) {
        FaultSpec spec;
        spec.mtbf = mtbf;
        spec.mttr = 50.0;
        spec.straggler_prob = 0.05;
        spec.stretch_lo = 1.5;
        spec.stretch_hi = 3.0;
        spec.failure_prob = 0.02;
        spec.max_retries = 3;
        spec.retry_backoff = 1.0;
        // The plan must match the rep's instance (outage horizon, stretch
        // per job), so rebuild the instance here; downsampling is cheap
        // relative to the runs themselves.
        const Instance inst = factory(rep);
        return make_fault_plan(spec, inst,
                               util::bench_seed() + 0x9e37u + rep);
      };
    }

    const auto points =
        exp::replicate_lineup(reps, factory, lineup, make_faults);

    const double x = faulty ? mtbf : 4.0 * mtbf_values[2];  // plot position
    std::vector<std::string> row = {
        faulty ? std::to_string(static_cast<long>(mtbf)) : "inf"};
    std::size_t failed = 0;
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      row.push_back(exp::format_ci(points[s].awct));
      failed += points[s].failed_runs;
      awct_series[s].x.push_back(x);
      awct_series[s].y.push_back(points[s].awct.mean);
      awct_series[s].ci.push_back(points[s].awct.half_width);
      wasted_series[s].x.push_back(x);
      wasted_series[s].y.push_back(points[s].wasted_work.mean);
      wasted_series[s].ci.push_back(points[s].wasted_work.half_width);
    }
    row.push_back(std::to_string(failed));
    table.push_back(std::move(row));
  }

  exp::PlotOptions opts;
  opts.title = "Graceful degradation: AWCT vs machine MTBF";
  opts.xlabel = "MTBF (inf plotted at right edge)";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  std::vector<exp::Series> all = awct_series;
  all.insert(all.end(), wasted_series.begin(), wasted_series.end());
  bench::emit("fault_degradation", all, opts, table);
  return 0;
}
