// Figure 4: effect of the number of machines on AWCT at fixed N
// (N = 64000 in the paper; scaled default N = 4000 with M swept across the
// same loaded-to-unloaded range).
//
// Expected shape (Sec 7.5.1): with few machines (heavy contention) MRIS
// achieves roughly half the AWCT of TETRIS; as machines are added the PQ
// family catches up and eventually beats MRIS (interval construction can't
// use the abundant capacity).
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

int main() {
  bench::print_header("fig4_machines", "Figure 4 (Sec 7.5.1)");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(4000);
  const std::vector<int> machine_counts = {1, 2, 4, 8, 16};
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xf49u);

  const std::vector<exp::SchedulerSpec> lineup = exp::comparison_lineup();

  std::vector<exp::Series> series;
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"M"};
    for (const auto& spec : lineup) header.push_back(spec.display_name());
    table.push_back(std::move(header));
  }

  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
  for (int machines : machine_counts) {
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    const auto points = exp::replicate_lineup(reps, factory, lineup);

    std::vector<std::string> row = {std::to_string(machines)};
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      row.push_back(exp::format_ci(points[s].awct));
      series[s].x.push_back(static_cast<double>(machines));
      series[s].y.push_back(points[s].awct.mean);
      series[s].ci.push_back(points[s].awct.half_width);
    }
    table.push_back(std::move(row));
  }

  exp::PlotOptions opts;
  opts.title = "Fig 4: AWCT vs number of machines (N fixed)";
  opts.xlabel = "machines M";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  bench::emit("fig4_machines", series, opts, table);
  return 0;
}
