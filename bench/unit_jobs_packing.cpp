// Remark 3: when every job has the same (unit) processing time, makespan
// scheduling reduces to vector bin packing, where algorithms with better
// R-dependence exist.  This bench compares the offline PQ makespan
// subroutine against First-Fit-Decreasing vector packing on unit-p
// instances as the number of resources grows — quantifying how much a
// packing-aware subroutine could save (the paper's future-work direction).
#include "bench_common.hpp"

#include "core/metrics.hpp"
#include "sched/optimal.hpp"
#include "sched/pq.hpp"
#include "sched/vector_packing.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"

using namespace mris;

namespace {

Instance unit_instance(std::size_t n, int machines, int resources,
                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  InstanceBuilder b(machines, resources);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> d(static_cast<std::size_t>(resources));
    for (double& x : d) {
      x = util::uniform01(rng) < 0.4 ? 0.0 : util::uniform(rng, 0.05, 0.9);
    }
    bool all_zero = true;
    for (double x : d) all_zero &= (x == 0.0);
    if (all_zero) d[0] = 0.3;
    b.add(0.0, 1.0, 1.0, std::move(d));
  }
  return b.build();
}

Time pq_offline_makespan(const Instance& inst) {
  Cluster cluster(inst.num_machines(), inst.num_resources());
  Schedule sched(inst.num_jobs());
  std::vector<JobId> ids(inst.num_jobs());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<JobId>(i);
  return offline_pq_schedule(
      ids, Heuristic::kSvf, 0.0,
      [&](JobId id) -> const Job& { return inst.job(id); },
      [&](JobId id, Time t, MachineId& m) {
        return cluster.earliest_fit(inst.job(id), t, m);
      },
      [&](JobId id, MachineId m, Time s) {
        cluster.reserve(inst.job(id), m, s);
        sched.assign(id, m, s);
      });
}

}  // namespace

int main() {
  bench::print_header("unit_jobs_packing", "Remark 3 (unit-p special case)");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(600);
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 4));

  std::vector<std::vector<std::string>> table = {
      {"R", "PQ-SVF makespan", "FFD makespan", "lower bound", "FFD/PQ"}};
  std::vector<exp::Series> series = {{"PQ-SVF", {}, {}, {}},
                                     {"FFD", {}, {}, {}},
                                     {"lower-bound", {}, {}, {}}};
  for (int R : {1, 2, 4, 8, 16}) {
    double pq_sum = 0.0, ffd_sum = 0.0, lb_sum = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const Instance inst = unit_instance(
          n, machines, R, util::bench_seed() + rep * 7919 + static_cast<std::uint64_t>(R));
      pq_sum += pq_offline_makespan(inst);
      const Schedule ffd = ffd_unit_makespan_schedule(inst);
      ffd_sum += makespan(inst, ffd);
      lb_sum += makespan_lower_bound(inst);
    }
    const double r = static_cast<double>(reps);
    table.push_back({std::to_string(R), exp::format_num(pq_sum / r),
                     exp::format_num(ffd_sum / r),
                     exp::format_num(lb_sum / r),
                     exp::format_num(ffd_sum / pq_sum)});
    series[0].x.push_back(R);
    series[0].y.push_back(pq_sum / r);
    series[1].x.push_back(R);
    series[1].y.push_back(ffd_sum / r);
    series[2].x.push_back(R);
    series[2].y.push_back(lb_sum / r);
  }

  exp::PlotOptions opts;
  opts.title = "Unit jobs: makespan of PQ vs FFD vector packing";
  opts.xlabel = "resource types R";
  opts.ylabel = "makespan";
  opts.log_x = true;
  bench::emit("unit_jobs_packing", series, opts, table);
  std::printf(
      "expected: both track the volume lower bound at small R; the gap\n"
      "grows with R (the paper's motivation for packing-aware subroutines).\n");
  return 0;
}
