// Lemma 4.1: the PRIORITY-QUEUE class is Omega(N)-competitive.  This bench
// runs the exact adversarial family from the proof (p = N blocker + N-1
// small jobs at eps) and reports ALG/OPT for PQ, TETRIS, BF-EXEC, and MRIS
// as N doubles: the PQ-class ratios grow linearly while MRIS stays flat.
#include "bench_common.hpp"

#include "core/metrics.hpp"

using namespace mris;

namespace {

/// The certificate schedule from the proof: small jobs first, blocker last.
double optimal_certificate_twct(const Instance& inst) {
  const std::size_t n = inst.num_jobs();
  Schedule opt(n);
  for (JobId j = 1; j < static_cast<JobId>(n); ++j) {
    opt.assign(j, 0, inst.job(j).release);
  }
  opt.assign(0, 0, inst.job(1).release + inst.job(1).processing);
  const ValidationResult valid = validate_schedule(inst, opt);
  if (!valid) {
    std::fprintf(stderr, "certificate infeasible: %s\n",
                 valid.message.c_str());
    std::exit(1);
  }
  return total_weighted_completion_time(inst, opt);
}

}  // namespace

int main() {
  bench::print_header("lemma41_adversarial", "Lemma 4.1 (Sec 4)");
  const std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Pq(Heuristic::kSjf),
      exp::SchedulerSpec::Pq(Heuristic::kWsvf),
      exp::SchedulerSpec::Tetris(),
      exp::SchedulerSpec::BfExec(),
      exp::SchedulerSpec::Mris(),
  };

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"N"};
    for (const auto& spec : lineup) {
      header.push_back(spec.display_name() + " ratio");
    }
    table.push_back(std::move(header));
  }

  std::vector<exp::Series> series;
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});

  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const Instance inst = trace::make_lemma41_instance(n, 2);
    const double opt = optimal_certificate_twct(inst);
    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const exp::EvalResult r = exp::evaluate(inst, lineup[s]);
      const double ratio = r.twct / opt;
      row.push_back(exp::format_num(ratio));
      series[s].x.push_back(static_cast<double>(n));
      series[s].y.push_back(ratio);
    }
    table.push_back(std::move(row));
  }

  exp::PlotOptions opts;
  opts.title = "Lemma 4.1: ALG/OPT on the adversarial family";
  opts.xlabel = "N";
  opts.ylabel = "competitive ratio (log)";
  opts.log_x = true;
  opts.log_y = true;
  bench::emit("lemma41_adversarial", series, opts, table);
  std::printf(
      "expected: PQ-class ratios grow ~N/8 (Omega(N)); MRIS stays below its\n"
      "8R(1+eps) = %g bound for R=2, eps=0.5.\n",
      8.0 * 2 * 1.5);
  return 0;
}
