// The price of non-preemption: the paper's model forbids preemption and
// migration (Sec 1 argues their real-world costs), while the preemptive
// related work (Im et al. [15, 16]) reallocates rates continuously and
// obtains O(1) ratios.  This bench runs the preemptive fluid reference
// (sched/fluid.hpp) next to the non-preemptive schedulers across load
// levels: the gap between the fluid AWCT and MRIS's AWCT is what giving up
// preemption costs; the gap between MRIS and the PQ family is what MRIS's
// patience recovers.
#include "bench_common.hpp"

#include "sched/fluid.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace mris;

int main() {
  bench::print_header("price_of_nonpreemption",
                      "preemptive reference (Sec 2.2.2 related work)");
  const std::size_t reps = util::bench_reps();
  // The fluid simulator recomputes an O(N R)-per-round allocation at every
  // event; keep N modest by default.
  const std::size_t n = bench::scaled(1000);
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xfedu);
  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);

  const std::vector<exp::SchedulerSpec> lineup = {
      exp::SchedulerSpec::Mris(),
      exp::SchedulerSpec::Pq(Heuristic::kWsjf),
      exp::SchedulerSpec::Tetris(),
  };

  std::vector<std::vector<std::string>> table = {
      {"M", "scheduler", "AWCT", "x over fluid"}};
  std::vector<exp::Series> series;
  series.push_back({"FLUID(preemptive)", {}, {}, {}});
  for (const auto& spec : lineup) series.push_back({spec.display_name(), {}, {}, {}});

  for (int machines : {1, 2, 4}) {
    const auto factory =
        bench::downsample_factory(base, factor, offsets, machines);
    std::vector<double> fluid_awct(reps);
    std::vector<std::vector<double>> alg_awct(lineup.size(),
                                              std::vector<double>(reps));
    util::global_pool().parallel_for(reps, [&](std::size_t rep) {
      const Instance inst = factory(rep);
      fluid_awct[rep] = fluid_max_min_schedule(inst).awct;
      for (std::size_t s = 0; s < lineup.size(); ++s) {
        alg_awct[s][rep] = exp::evaluate(inst, lineup[s]).awct;
      }
    });
    const auto fluid_ci = util::mean_ci95(fluid_awct);
    table.push_back({std::to_string(machines), "FLUID(preemptive)",
                     exp::format_ci(fluid_ci), "1"});
    series[0].x.push_back(machines);
    series[0].y.push_back(fluid_ci.mean);
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const auto ci = util::mean_ci95(alg_awct[s]);
      table.push_back({std::to_string(machines), lineup[s].display_name(),
                       exp::format_ci(ci),
                       exp::format_num(ci.mean / fluid_ci.mean)});
      series[s + 1].x.push_back(machines);
      series[s + 1].y.push_back(ci.mean);
      series[s + 1].ci.push_back(ci.half_width);
    }
  }

  exp::PlotOptions opts;
  opts.title = "AWCT: preemptive fluid reference vs non-preemptive";
  opts.xlabel = "machines M";
  opts.ylabel = "AWCT";
  opts.log_x = true;
  bench::emit("price_of_nonpreemption", series, opts, table);
  std::printf(
      "expected: the fluid reference is cheapest everywhere (free\n"
      "preemption + migration + pooling); MRIS narrows the gap most under\n"
      "load — the regime the paper targets.\n");
  return 0;
}
