// Durability overhead bench (docs/RECOVERY.md): wall-clock cost of the
// snapshot + write-ahead-journal subsystem at its default cadence, measured
// as matched pairs of engine runs — one plain, one durable — on the same
// azure-like workloads the micro benches use.
//
// Three arms:
//   mris_wakeups   MRIS, snapshots at gamma_k wakeups (the default cadence)
//   pq_every64     PQ-WSJF (never wakes up), snapshots every 64 events
//   mris_faulty    MRIS under outages/stragglers/checkpoints, default cadence
//
// For each arm the bench runs `MRIS_REPS` timed pairs and reports the best
// (minimum) wall-clock of each side — the standard way to strip scheduler
// noise from a cold-cache comparison — plus the durable run's snapshot /
// journal volume.  Every pair is also checked byte-identical via
// encode_run_result(): durability must never change the scheduling outcome,
// and a divergence fails the bench (exit 1).
//
// Results go to results/BENCH_recovery.json.  Like BENCH_profile.json it
// carries wall-clock timings, so it is EXCLUDED from the determinism CI
// byte-diff; the committed baseline documents the < 10% overhead target.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <memory>

#include "sched/mris.hpp"
#include "sched/pq.hpp"
#include "sim/faults.hpp"
#include "sim/faults/crash.hpp"
#include "sim/recovery/options.hpp"

using namespace mris;

namespace {

struct ArmResult {
  std::string name;
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  double plain_ms = 0.0;
  double durable_ms = 0.0;
  std::uint64_t snapshots = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_bytes = 0;
  bool identical = false;

  double overhead_pct() const {
    return plain_ms > 0.0 ? (durable_ms / plain_ms - 1.0) * 100.0 : 0.0;
  }
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Directory for the durable runs' state files.  Defaults to a RAM-backed
/// filesystem when one exists so the bench measures the subsystem's own
/// overhead (serialization, CRC, syscalls) rather than the device's fsync
/// latency, which varies by orders of magnitude across storage.  Set
/// MRIS_BENCH_STATE_DIR to point at a real device to measure that instead.
std::string state_root() {
  if (const char* dir = std::getenv("MRIS_BENCH_STATE_DIR")) return dir;
  std::error_code ec;
  if (std::filesystem::is_directory("/dev/shm", ec)) return "/dev/shm";
  return std::filesystem::temp_directory_path().string();
}

/// One timed pair: plain run vs durable run (fresh scheduler each, fresh
/// state files each — the bench measures steady-state writing, not resume).
ArmResult run_arm(const std::string& name, const Instance& inst,
                  const faults::SchedulerFactory& make_scheduler,
                  const FaultPlan* faults, std::uint64_t snapshot_every) {
  ArmResult r;
  r.name = name;
  r.jobs = inst.num_jobs();
  const std::size_t reps = util::bench_reps();

  const std::string dir =
      (std::filesystem::path(state_root()) / ("mris_bench_rec_" + name))
          .string();
  std::filesystem::create_directories(dir);

  RunOptions plain_options;
  if (faults != nullptr && !faults->empty()) plain_options.faults = faults;

  recovery::RecoveryOptions rec;  // defaults: wakeup snapshots, sync every 64
  rec.snapshot_path = dir + "/engine.mrsn";
  rec.journal_path = dir + "/engine.mrjl";
  rec.snapshot_every = snapshot_every;

  r.plain_ms = 1e300;
  r.durable_ms = 1e300;
  r.identical = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    RunResult plain;
    {
      const std::unique_ptr<OnlineScheduler> s = make_scheduler();
      const auto t0 = std::chrono::steady_clock::now();
      plain = run_online(inst, *s, plain_options);
      r.plain_ms = std::min(r.plain_ms, ms_since(t0));
    }
    RunResult durable;
    {
      RunOptions durable_options = plain_options;
      durable_options.recovery = &rec;
      const std::unique_ptr<OnlineScheduler> s = make_scheduler();
      const auto t0 = std::chrono::steady_clock::now();
      durable = run_online(inst, *s, durable_options);
      r.durable_ms = std::min(r.durable_ms, ms_since(t0));
    }
    r.events = plain.num_events;
    r.snapshots = durable.recovery.snapshots_taken;
    r.snapshot_bytes = durable.recovery.snapshot_bytes;
    r.journal_records = durable.recovery.journal_records;
    r.journal_bytes = durable.recovery.journal_bytes;
    if (faults::encode_run_result(plain) != faults::encode_run_result(durable))
      r.identical = false;
  }

  std::printf("%-14s jobs=%-6zu events=%-7llu plain=%8.2f ms  "
              "durable=%8.2f ms  overhead=%5.1f%%  snapshots=%llu  "
              "journal=%llu rec/%llu B  results %s\n",
              r.name.c_str(), r.jobs,
              static_cast<unsigned long long>(r.events), r.plain_ms,
              r.durable_ms, r.overhead_pct(),
              static_cast<unsigned long long>(r.snapshots),
              static_cast<unsigned long long>(r.journal_records),
              static_cast<unsigned long long>(r.journal_bytes),
              r.identical ? "IDENTICAL" : "DIVERGED");
  return r;
}

int run() {
  bench::print_header("recovery_overhead",
                      "snapshot + WAL wall-clock cost (docs/RECOVERY.md)");
  // Sized like the micro_profile workloads (10k-20k jobs) — the overhead
  // target is stated against those, and the journal's per-event cost only
  // means something relative to realistic per-event scheduler work.
  const Instance inst =
      to_instance(bench::base_workload(bench::scaled(12000)), /*machines=*/8);

  FaultSpec spec;
  spec.mtbf = 400.0;
  spec.mttr = 50.0;
  spec.straggler_prob = 0.1;
  spec.failure_prob = 0.05;
  spec.retry_backoff = 1.0;
  spec.checkpoint.kind = CheckpointPolicy::Kind::kPeriodic;
  spec.checkpoint.interval = 25.0;
  spec.checkpoint.restore_overhead = 2.0;
  const FaultPlan plan = make_fault_plan(spec, inst, util::bench_seed());

  std::vector<ArmResult> results;
  results.push_back(run_arm(
      "mris_wakeups", inst, [] { return std::make_unique<MrisScheduler>(); },
      nullptr, /*snapshot_every=*/0));
  results.push_back(run_arm(
      "pq_every64", inst,
      [] { return std::make_unique<PriorityQueueScheduler>(); }, nullptr,
      /*snapshot_every=*/64));
  results.push_back(run_arm(
      "mris_faulty", inst, [] { return std::make_unique<MrisScheduler>(); },
      &plan, /*snapshot_every=*/0));

  const std::string path = bench::results_json_path("recovery");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema_version\": 2,\n"
                 "  \"bench\": \"recovery_overhead\",\n"
                 "  \"config\": {\"seed\": %llu, \"reps\": %zu, "
                 "\"scale\": %s},\n"
                 "  %s,\n"
                 "  \"overhead_target_pct\": 10,\n"
                 "  \"workloads\": [\n",
                 static_cast<unsigned long long>(util::bench_seed()),
                 util::bench_reps(),
                 bench::json_num(util::bench_scale()).c_str(),
                 bench::provenance_json().c_str());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ArmResult& r = results[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"jobs\": %zu, \"events\": %llu, "
          "\"plain_ms\": %.3f, \"durable_ms\": %.3f, "
          "\"overhead_pct\": %.2f, \"snapshots\": %llu, "
          "\"snapshot_bytes\": %llu, \"journal_records\": %llu, "
          "\"journal_bytes\": %llu, \"identical\": %s}%s\n",
          r.name.c_str(), r.jobs, static_cast<unsigned long long>(r.events),
          r.plain_ms, r.durable_ms, r.overhead_pct(),
          static_cast<unsigned long long>(r.snapshots),
          static_cast<unsigned long long>(r.snapshot_bytes),
          static_cast<unsigned long long>(r.journal_records),
          static_cast<unsigned long long>(r.journal_bytes),
          r.identical ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    std::printf("json summary written to %s\n", path.c_str());
  }

  for (const ArmResult& r : results) {
    if (!r.identical) {
      std::printf("FAIL: %s durable run diverged from the plain run\n",
                  r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main() { return run(); }
