// Ablation of MRIS's design choices (DESIGN.md §4):
//   * backfilling on/off — Sec 5.3 argues disjoint intervals ([13]'s
//     original scheme) waste resources; backfilling reclaims them;
//   * interval base alpha — the proof needs alpha >= 2; larger alpha waits
//     longer per iteration;
//   * CADP error eps — trades knapsack runtime against interval overflow.
#include "bench_common.hpp"

#include "util/rng.hpp"

using namespace mris;

namespace {

exp::SchedulerSpec mris_variant(const std::string& label, double alpha,
                                double eps, bool backfill) {
  exp::SchedulerSpec spec = exp::SchedulerSpec::Mris();
  spec.mris.alpha = alpha;
  spec.mris.eps = eps;
  spec.mris.backfill = backfill;
  spec.label = label;
  return spec;
}

}  // namespace

int main() {
  bench::print_header("ablation_mris", "Sec 5.3 / 6.3 design choices");
  const std::size_t reps = util::bench_reps();
  const std::size_t n = bench::scaled(2000);
  const int machines = static_cast<int>(util::env_int("MRIS_MACHINES", 2));
  const std::size_t base_jobs = n * std::max<std::size_t>(reps, 10);
  const trace::Workload base = bench::base_workload(base_jobs);
  util::Xoshiro256 offset_rng(util::bench_seed() ^ 0xab1u);
  const std::size_t factor = base_jobs / n;
  const auto offsets = trace::sample_offsets(factor, reps, offset_rng);
  const auto factory =
      bench::downsample_factory(base, factor, offsets, machines);

  std::vector<exp::SchedulerSpec> lineup = {
      mris_variant("baseline(a=2,eps=.5,bf)", 2.0, 0.5, true),
      mris_variant("no-backfill", 2.0, 0.5, false),
      mris_variant("alpha=3", 3.0, 0.5, true),
      mris_variant("alpha=4", 4.0, 0.5, true),
      mris_variant("eps=0.1", 2.0, 0.1, true),
      mris_variant("eps=0.9", 2.0, 0.9, true),
  };
  {
    // Subroutine ablation: the literal Sec 5.2 event scan vs earliest-fit.
    exp::SchedulerSpec evscan = mris_variant("event-scan", 2.0, 0.5, true);
    evscan.mris.subroutine = MrisConfig::Subroutine::kEventScan;
    lineup.push_back(evscan);
  }

  const auto points = exp::replicate_lineup(reps, factory, lineup);

  std::vector<std::vector<std::string>> table = {
      {"variant", "AWCT", "makespan", "mean delay", "vs baseline"}};
  for (std::size_t s = 0; s < lineup.size(); ++s) {
    table.push_back({lineup[s].display_name(),
                     exp::format_ci(points[s].awct),
                     exp::format_ci(points[s].makespan),
                     exp::format_ci(points[s].mean_delay),
                     exp::format_num(points[s].awct.mean /
                                     points[0].awct.mean)});
  }
  std::printf("%s", exp::render_table(table).c_str());
  std::printf(
      "\nexpected: no-backfill strictly worse (idle reserved intervals);\n"
      "larger alpha worse (longer waits per interval); eps has a mild\n"
      "effect (interval overflow factor 1+eps vs knapsack precision).\n");

  std::vector<exp::Series> series;
  for (std::size_t s = 0; s < lineup.size(); ++s) {
    series.push_back({lineup[s].display_name(),
                      {0.0},
                      {points[s].awct.mean},
                      {points[s].awct.half_width}});
  }
  exp::write_series_csv(bench::results_csv_path("ablation_mris"), series);
  return 0;
}
