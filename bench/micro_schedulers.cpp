// Microbenchmarks of full online simulations: events processed per second
// for each scheduler, and the O(N^2)-ish growth of the PQ family vs MRIS's
// knapsack-dominated cost (Sec 5.3: MRIS is O(N^3/eps) worst case but each
// iteration touches only the pending set).
#include <benchmark/benchmark.h>

#include "exp/runner.hpp"
#include "trace/generator.hpp"
#include "trace/sampling.hpp"

namespace {

using namespace mris;

Instance bench_instance(std::size_t n) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = n;
  cfg.seed = 42;
  return to_instance(merge_storage(generate_azure_like(cfg)), 4);
}

void run_spec(benchmark::State& state, const exp::SchedulerSpec& spec) {
  const Instance inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto scheduler = exp::make_scheduler(spec, inst);
    benchmark::DoNotOptimize(run_online(inst, *scheduler));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Pq(benchmark::State& state) {
  run_spec(state, exp::SchedulerSpec::Pq(Heuristic::kWsjf));
}
BENCHMARK(BM_Pq)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_Mris(benchmark::State& state) {
  run_spec(state, exp::SchedulerSpec::Mris());
}
BENCHMARK(BM_Mris)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_MrisGreedy(benchmark::State& state) {
  run_spec(state, exp::SchedulerSpec::Mris(
                      Heuristic::kWsjf, knapsack::Backend::kGreedyConstraint));
}
BENCHMARK(BM_MrisGreedy)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_Tetris(benchmark::State& state) {
  run_spec(state, exp::SchedulerSpec::Tetris());
}
BENCHMARK(BM_Tetris)->Arg(250)->Arg(500)->Arg(1000);

void BM_BfExec(benchmark::State& state) {
  run_spec(state, exp::SchedulerSpec::BfExec());
}
BENCHMARK(BM_BfExec)->Arg(250)->Arg(500)->Arg(1000);

void BM_Validate(benchmark::State& state) {
  const Instance inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  auto scheduler = exp::make_scheduler(exp::SchedulerSpec::Pq(), inst);
  const RunResult r = run_online(inst, *scheduler);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_schedule(inst, r.schedule));
  }
}
BENCHMARK(BM_Validate)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
