// mris_serve — the scheduler-as-a-service daemon front end (docs/DAEMON.md).
//
//   mris_serve pack --synthetic --jobs 2000 --seed 7 --machines 4 \
//       --out stream.bin
//   mris_serve pack --workload w.csv --machines 4 --out stream.bin
//   mris_serve run --machines 4 --resources 4 --scheduler mris \
//       --in stream.bin --sink csv --sink-out decisions.csv \
//       --state-dir /var/lib/mris --snapshot-every 64
//   ... | mris_serve run --machines 4 --resources 2 --scheduler mris
//
// `pack` encodes a workload as a wire-format admission stream (jobs in
// release order, seq from 0 — the canonical streamed form).  `run` serves a
// stream from --in or stdin: every admission is journaled write-ahead when
// --state-dir is set, and a killed daemon restarted with --resume (producer
// replaying from seq 0) finishes with byte-identical sink output.
//
// --crash-after-jobs N is the crash-test harness's kill switch: the daemon
// _Exit(137)s immediately after admitting its N-th live job — no unwinding,
// no buffer flushes — so scripts/daemon_crash_test.sh can cut it down
// mid-stream without racing a timer.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/schedulers.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "trace/workload.hpp"
#include "util/flags.hpp"

namespace {

using namespace mris;

int usage() {
  std::puts(
      "usage: mris_serve <command> [flags]\n"
      "\n"
      "commands:\n"
      "  pack  encode a workload as a protocol stream (docs/DAEMON.md)\n"
      "        --workload F | --synthetic [--jobs N --seed S]\n"
      "        --machines M (demand normalization; default 4)\n"
      "        --out F (required)\n"
      "  run   serve an admission stream\n"
      "        --machines M --resources R --scheduler NAME (default mris)\n"
      "        --in F (default: stdin)\n"
      "        --sink null|csv|jsonl [--sink-out F (default: stdout)]\n"
      "        --state-dir D [--snapshot-every N] [--resume]\n"
      "        --prune-every N (calendar prune cadence, default 32)\n"
      "\n"
      "schedulers: any online scheduler name from `mris simulate`;\n"
      "clairvoyant ones (capq*) see an empty horizon and are not useful\n"
      "in a daemon.");
  return 2;
}

/// Jobs in the canonical streamed form: release order, ids = seq.
std::vector<Job> canonical_jobs(const Instance& inst) {
  std::vector<Job> jobs = inst.jobs();
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  return jobs;
}

int cmd_pack(const util::Flags& flags) {
  const std::string out_path = flags.get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "pack: --out is required\n");
    return 2;
  }
  const std::string workload_path = flags.get("workload", "");
  trace::Workload w;
  if (!workload_path.empty()) {
    w = trace::read_workload_csv_file(workload_path);
  } else if (flags.get_bool("synthetic", false)) {
    trace::GeneratorConfig cfg;
    cfg.num_jobs = static_cast<std::size_t>(flags.get_int("jobs", 1000));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    w = merge_storage(trace::generate_azure_like(cfg));
  } else {
    std::fprintf(stderr, "pack: need --workload or --synthetic\n");
    return 2;
  }
  const int machines = static_cast<int>(flags.get_int("machines", 4));
  const Instance inst = to_instance(w, machines);
  const std::vector<Job> jobs = canonical_jobs(inst);
  const std::string bytes = serve::encode_stream(
      jobs, static_cast<std::uint32_t>(inst.num_resources()));

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "pack: failed writing %s\n", out_path.c_str());
    return 1;
  }
  std::printf("packed %zu jobs (%d resources) -> %s (%zu bytes)\n",
              jobs.size(), inst.num_resources(), out_path.c_str(),
              bytes.size());
  return 0;
}

int cmd_run(const util::Flags& flags) {
  serve::ServeOptions opts;
  opts.num_machines = static_cast<int>(flags.get_int("machines", 4));
  opts.num_resources = static_cast<int>(flags.get_int("resources", 2));
  opts.prune_every = static_cast<int>(flags.get_int("prune-every", 32));
  opts.state_dir = flags.get("state-dir", "");
  opts.snapshot_every =
      static_cast<std::uint64_t>(flags.get_int("snapshot-every", 0));
  opts.resume = flags.get_bool("resume", false);

  const std::string scheduler = flags.get("scheduler", "mris");
  const exp::SchedulerSpec spec = exp::parse_scheduler_spec(scheduler);
  // The factory hands the scheduler an empty horizon: a daemon has no
  // future knowledge (clairvoyant schedulers degrade to their online core).
  opts.make_scheduler = [&spec, &opts] {
    return exp::make_scheduler(
        spec, Instance(std::vector<Job>{}, opts.num_machines,
                       opts.num_resources));
  };

  const serve::SinkKind sink_kind =
      serve::parse_sink_kind(flags.get("sink", "null"));
  const std::string sink_path = flags.get("sink-out", "");
  std::ofstream sink_file;
  if (!sink_path.empty()) {
    // Truncate: a resumed daemon re-renders the full history, so the file
    // always holds exactly the uninterrupted-run bytes.
    sink_file.open(sink_path, std::ios::binary | std::ios::trunc);
    if (!sink_file) {
      std::fprintf(stderr, "run: cannot open %s\n", sink_path.c_str());
      return 1;
    }
  }
  std::ostream& sink_stream = sink_path.empty() ? std::cout : sink_file;
  const std::unique_ptr<serve::MetricsSink> sink =
      serve::make_sink(sink_kind, sink_stream);
  opts.sink = sink.get();

  const auto crash_after = flags.get_int("crash-after-jobs", 0);
  if (crash_after > 0) {
    opts.on_admit = [crash_after](std::uint64_t admitted) {
      if (admitted >= static_cast<std::uint64_t>(crash_after)) {
        std::_Exit(137);  // kill -9 semantics: no flushes, no unwinding
      }
    };
  }

  const std::string in_path = flags.get("in", "");
  std::ifstream in_file;
  if (!in_path.empty()) {
    in_file.open(in_path, std::ios::binary);
    if (!in_file) {
      std::fprintf(stderr, "run: cannot open %s\n", in_path.c_str());
      return 1;
    }
  }
  std::istream& in = in_path.empty() ? std::cin : in_file;

  const serve::ServeResult r = serve::serve_stream(in, opts);
  std::fprintf(stderr,
               "served %llu jobs (%llu frames) scheduler=%s\n"
               "placement_checksum=%016llx\n"
               "resume: snapshot=%d restored=%llu readmitted=%llu "
               "deduped=%llu\n"
               "latency_us: n=%llu mean=%.1f p50=%.1f p99=%.1f max=%.1f\n",
               static_cast<unsigned long long>(r.jobs),
               static_cast<unsigned long long>(r.frames), scheduler.c_str(),
               static_cast<unsigned long long>(r.placement_checksum),
               r.resumed_from_snapshot ? 1 : 0,
               static_cast<unsigned long long>(r.resume_restored),
               static_cast<unsigned long long>(r.resume_readmitted),
               static_cast<unsigned long long>(r.replay_deduped),
               static_cast<unsigned long long>(r.latency.samples),
               r.latency.mean_us, r.latency.p50_us, r.latency.p99_us,
               r.latency.max_us);
  // The one machine-parseable stdout line the crash script keys on.
  std::printf("checksum %016llx jobs %llu\n",
              static_cast<unsigned long long>(r.placement_checksum),
              static_cast<unsigned long long>(r.jobs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const util::Flags flags(argc - 1, argv + 1);
    int rc = 2;
    if (command == "pack") {
      rc = cmd_pack(flags);
    } else if (command == "run") {
      rc = cmd_run(flags);
    } else {
      return usage();
    }
    for (const std::string& name : flags.unconsumed()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      rc = 2;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mris_serve %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
