#include "tools/mris_analyze/layering.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <tuple>

namespace mris::analyze {

namespace {

std::string module_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.find('/');
  if (slash == std::string::npos) return "";
  return rel_path.substr(0, slash);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const std::vector<std::vector<std::string>>& default_layers() {
  static const std::vector<std::vector<std::string>> kLayers = {
      {"util"},    {"core"},    {"trace"},   {"sim"},
      {"knapsack", "sched"},    {"serve"},   {"testkit"}, {"exp"},
  };
  return kLayers;
}

std::vector<IncludeEdge> collect_includes(const SourceFile& file,
                                          const std::string& rel_path) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < file.stripped_lines.size(); ++i) {
    const std::string& sline = file.stripped_lines[i];
    std::size_t pos = sline.find_first_not_of(" \t");
    if (pos == std::string::npos || sline[pos] != '#') continue;
    pos = sline.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || sline.compare(pos, 7, "include") != 0) {
      continue;
    }
    // The stripper blanks string contents, so read the path from the
    // original line.  Only quoted includes participate in layering.
    if (i >= file.original_lines.size()) continue;
    const std::string& oline = file.original_lines[i];
    const std::size_t q1 = oline.find('"');
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = oline.find('"', q1 + 1);
    if (q2 == std::string::npos || q2 == q1 + 1) continue;
    IncludeEdge e;
    e.from = rel_path;
    e.to = oline.substr(q1 + 1, q2 - q1 - 1);
    e.line = static_cast<int>(i) + 1;
    edges.push_back(std::move(e));
  }
  return edges;
}

LayeringResult analyze_layering(
    const std::vector<SourceFile>& files,
    const std::vector<std::string>& rel_paths, const Options& options,
    const std::vector<std::vector<std::string>>& layers) {
  LayeringResult result;
  std::map<std::string, int> rank;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (const std::string& m : layers[l]) {
      rank[m] = static_cast<int>(l);
    }
  }

  // Stable iteration: process files sorted by relative path.
  std::vector<std::size_t> order(files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rel_paths[a] < rel_paths[b];
  });

  std::map<std::string, std::size_t> by_rel;
  for (std::size_t i = 0; i < files.size(); ++i) by_rel[rel_paths[i]] = i;

  result.file_count = static_cast<int>(files.size());
  std::map<std::string, std::set<std::string>> out_mods, in_mods;
  std::map<std::string, std::vector<IncludeEdge>> file_edges;  // from-file

  auto note_violation = [&](std::size_t file_idx, int line,
                            const std::string& rule,
                            const std::string& detail) {
    std::vector<Finding> one;
    Reporter reporter(files[file_idx], options, one);
    reporter.report(line, rule, detail);
    Violation v;
    v.rule = rule;
    v.file = rel_paths[file_idx];  // JSON uses root-relative paths
    v.line = line;
    v.detail = detail;
    v.suppressed = one.empty();
    result.violations.push_back(v);
    result.findings.insert(result.findings.end(), one.begin(), one.end());
  };

  for (const std::size_t idx : order) {
    const SourceFile& f = files[idx];
    const std::string& rel = rel_paths[idx];
    const std::string from_mod = module_of(rel);
    if (!from_mod.empty()) ++result.modules[from_mod].files;
    for (const IncludeEdge& e : collect_includes(f, rel)) {
      ++result.edge_count;
      file_edges[rel].push_back(e);
      const std::string to_mod = module_of(e.to);
      const auto from_rank = rank.find(from_mod);
      const auto to_rank = rank.find(to_mod);
      if (from_rank == rank.end() || to_rank == rank.end()) continue;
      if (from_mod == to_mod) {
        ++result.modules[from_mod].internal_edges;
      } else {
        ++result.module_edges[{from_mod, to_mod}];
        out_mods[from_mod].insert(to_mod);
        in_mods[to_mod].insert(from_mod);
        if (to_rank->second > from_rank->second) {
          note_violation(idx, e.line, "layer-upward",
                         "'" + rel + "' (layer " +
                             std::to_string(from_rank->second) + ", " +
                             from_mod + ") includes '" + e.to + "' (layer " +
                             std::to_string(to_rank->second) + ", " + to_mod +
                             "): layering is " + "util -> core -> trace -> "
                             "sim -> {knapsack, sched} -> testkit -> exp");
        }
      }
    }
  }

  for (auto& [mod, stats] : result.modules) {
    const auto r = rank.find(mod);
    stats.rank = r == rank.end() ? -1 : r->second;
    stats.fan_in = static_cast<int>(in_mods[mod].size());
    stats.fan_out = static_cast<int>(out_mods[mod].size());
  }
  // Modules that appear only as include targets still get a stats row.
  for (const auto& [mod, srcs] : in_mods) {
    if (result.modules.count(mod) == 0) {
      ModuleStats stats;
      const auto r = rank.find(mod);
      stats.rank = r == rank.end() ? -1 : r->second;
      stats.fan_in = static_cast<int>(srcs.size());
      result.modules[mod] = stats;
    }
  }

  // File-level cycle detection (DFS, deterministic order).  Any module
  // cycle — including a same-layer one like knapsack <-> sched — shows up
  // here as a file cycle through the modules' headers, because an include
  // edge IS a file edge.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path_stack;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    path_stack.push_back(node);
    for (const IncludeEdge& e : file_edges[node]) {
      if (by_rel.count(e.to) == 0) continue;  // outside the scanned set
      const int c = color[e.to];
      if (c == 1) {
        // Back edge: the cycle is path_stack from e.to onward, closed by e.
        std::string chain;
        bool in_cycle = false;
        for (const std::string& n : path_stack) {
          if (n == e.to) in_cycle = true;
          if (in_cycle) chain += n + " -> ";
        }
        chain += e.to;
        if (reported.insert(chain).second) {
          const auto it = by_rel.find(node);
          if (it != by_rel.end()) {
            note_violation(it->second, e.line, "layer-cycle",
                           "include cycle: " + chain);
          }
        }
      } else if (c == 0) {
        dfs(e.to);
      }
    }
    path_stack.pop_back();
    color[node] = 2;
  };
  for (const std::size_t idx : order) {
    if (color[rel_paths[idx]] == 0) dfs(rel_paths[idx]);
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(result.violations.begin(), result.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

std::string layers_json(const LayeringResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"generator\": \"mris_analyze layering v1\",\n";
  out << "  \"layers\": [";
  const auto& layers = default_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    out << (l ? ", " : "") << "[";
    for (std::size_t m = 0; m < layers[l].size(); ++m) {
      out << (m ? ", " : "") << '"' << layers[l][m] << '"';
    }
    out << "]";
  }
  out << "],\n";
  out << "  \"files\": " << result.file_count << ",\n";
  out << "  \"include_edges\": " << result.edge_count << ",\n";
  out << "  \"modules\": {\n";
  bool first = true;
  for (const auto& [mod, stats] : result.modules) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << json_escape(mod) << "\": {\"rank\": " << stats.rank
        << ", \"files\": " << stats.files << ", \"fan_in\": " << stats.fan_in
        << ", \"fan_out\": " << stats.fan_out
        << ", \"internal_edges\": " << stats.internal_edges << "}";
  }
  out << "\n  },\n";
  out << "  \"module_edges\": [\n";
  first = true;
  for (const auto& [key, count] : result.module_edges) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"from\": \"" << json_escape(key.first) << "\", \"to\": \""
        << json_escape(key.second) << "\", \"includes\": " << count << "}";
  }
  out << "\n  ],\n";
  out << "  \"violations\": [\n";
  first = true;
  for (const Violation& v : result.violations) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"rule\": \"" << json_escape(v.rule) << "\", \"file\": \""
        << json_escape(v.file) << "\", \"line\": " << v.line
        << ", \"suppressed\": " << (v.suppressed ? "true" : "false")
        << ", \"detail\": \"" << json_escape(v.detail) << "\"}";
  }
  out << "\n  ]\n";
  out << "}\n";
  return out.str();
}

std::string layers_markdown(const LayeringResult& result) {
  std::ostringstream out;
  out << "```\n";
  const auto& layers = default_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    if (l) out << "   |\n   v\n";
    out << " ";
    for (std::size_t m = 0; m < layers[l].size(); ++m) {
      out << (m ? "   " : "") << layers[l][m];
    }
    out << "\n";
  }
  out << "```\n\n";
  out << "| module | layer | files | fan-in | fan-out | internal includes "
         "|\n";
  out << "|---|---|---|---|---|---|\n";
  for (const auto& [mod, stats] : result.modules) {
    out << "| " << mod << " | " << stats.rank << " | " << stats.files << " | "
        << stats.fan_in << " | " << stats.fan_out << " | "
        << stats.internal_edges << " |\n";
  }
  out << "\n| from | to | includes |\n|---|---|---|\n";
  for (const auto& [key, count] : result.module_edges) {
    out << "| " << key.first << " | " << key.second << " | " << count
        << " |\n";
  }
  return out.str();
}

}  // namespace mris::analyze
