#include "tools/mris_analyze/taint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace mris::analyze {

namespace {

bool is_begin_family(const std::string& s) {
  return s == "begin" || s == "cbegin" || s == "rbegin" || s == "crbegin";
}

const std::set<std::string>& sink_words() {
  static const std::set<std::string> kSinks = {
      "commit",    "try_commit", "push",     "schedule_wakeup",
      "record",    "write_csv",  "write_row", "write_json",
      "add_row",   "append",     "log_event", "emit",
  };
  return kSinks;
}

/// Is `=`-like token an assignment (not a comparison)?
bool is_assignment_op(const std::string& s) {
  if (s == "=") return true;
  return s.size() == 2 && s[1] == '=' && s != "==" && s != "<=" &&
         s != ">=" && s != "!=";
}

struct TaintContext {
  const SourceFile& file;
  std::map<std::string, ContainerOrder> containers;
  std::set<std::string> thread_locals;
  std::set<std::string> tainted_fns;  ///< intra-file tainted-returning fns

  ContainerOrder* container(const std::string& name) {
    auto it = containers.find(name);
    return it == containers.end() ? nullptr : &it->second;
  }
};

/// True when tokens[i] starts `<cont>.begin()`-family access on a tracked
/// container; sets `order` accordingly.
bool is_container_begin(TaintContext& ctx, const std::vector<Token>& tokens,
                        std::size_t i, ContainerOrder* order) {
  if (!tokens[i].is_ident) return false;
  ContainerOrder* o = ctx.container(tokens[i].text);
  if (o == nullptr) return false;
  if (i + 2 >= tokens.size()) return false;
  if (tokens[i + 1].text != "." && tokens[i + 1].text != "->") return false;
  if (!is_begin_family(tokens[i + 2].text)) return false;
  if (order != nullptr) *order = *o;
  return true;
}

/// True when tokens[i] is `hash` instantiated with a pointer type.
bool is_pointer_hash(const std::vector<Token>& tokens, std::size_t i) {
  if (!tokens[i].is_ident || tokens[i].text != "hash") return false;
  if (i + 1 >= tokens.size() || tokens[i + 1].text != "<") return false;
  const std::size_t close = match_forward(tokens, i + 1);
  for (std::size_t j = i + 2; j < close && j < tokens.size(); ++j) {
    if (tokens[j].text == "*") return true;
  }
  return false;
}

/// Does the token range [a, b) contain a tainted value?
bool range_tainted(TaintContext& ctx, const std::set<std::string>& tainted,
                   const std::vector<Token>& tokens, std::size_t a,
                   std::size_t b) {
  for (std::size_t i = a; i < b && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident) continue;
    if (tainted.count(t.text) != 0) return true;
    if (ctx.tainted_fns.count(t.text) != 0 && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      return true;
    }
    if (is_container_begin(ctx, tokens, i, nullptr)) return true;
    if (is_pointer_hash(tokens, i)) return true;
  }
  return false;
}

/// Identifiers declared in a range-for declarator (last ident, or every
/// ident of a structured binding `[a, b]`).
std::vector<std::string> range_for_decls(const std::vector<Token>& tokens,
                                         std::size_t a, std::size_t b) {
  std::vector<std::string> names;
  for (std::size_t i = a; i < b && i < tokens.size(); ++i) {
    if (tokens[i].text == "[") {
      const std::size_t close = match_forward(tokens, i);
      for (std::size_t j = i + 1; j < close && j < tokens.size(); ++j) {
        if (tokens[j].is_ident) names.push_back(tokens[j].text);
      }
      return names;
    }
  }
  std::string last;
  for (std::size_t i = a; i < b && i < tokens.size(); ++i) {
    if (tokens[i].is_ident && tokens[i].text != "const" &&
        tokens[i].text != "auto") {
      last = tokens[i].text;
    }
  }
  if (!last.empty()) names.push_back(last);
  return names;
}

const char* order_rule(ContainerOrder order) {
  return order == ContainerOrder::kUnordered ? "taint-unordered"
                                             : "taint-pointer-key";
}

const char* order_noun(ContainerOrder order) {
  return order == ContainerOrder::kUnordered
             ? "unordered container (iteration order is "
               "implementation-defined)"
             : "pointer-keyed ordered container (iteration order is address "
               "order, re-rolled by ASLR every run)";
}

/// Immediate source findings: every iteration construct over a tracked
/// container, for_each, and pointer hashes.  This is the strict superset
/// of mris_lint's range-for-only `unordered-iter` rule.
void scan_sources(TaintContext& ctx, Reporter& reporter) {
  const std::vector<Token>& tokens = ctx.file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident) continue;
    ContainerOrder order = ContainerOrder::kUnordered;
    if (t.text == "for" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      const std::size_t close = match_forward(tokens, i + 1);
      std::size_t colon = tokens.size();
      for (std::size_t j = i + 2; j < close; ++j) {
        if (tokens[j].text == ":" && (j == 0 || tokens[j - 1].text != ":") &&
            (j + 1 >= tokens.size() || tokens[j + 1].text != ":")) {
          colon = j;
          break;
        }
      }
      if (colon < tokens.size()) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          ContainerOrder* o =
              tokens[j].is_ident ? ctx.container(tokens[j].text) : nullptr;
          if (o != nullptr) {
            reporter.report(t.line, order_rule(*o),
                            "range-for over '" + tokens[j].text + "', " +
                                order_noun(*o));
            break;
          }
        }
      }
      continue;
    }
    if (t.text == "for_each" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      const std::size_t close = match_forward(tokens, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        ContainerOrder* o =
            tokens[j].is_ident ? ctx.container(tokens[j].text) : nullptr;
        if (o != nullptr) {
          reporter.report(t.line, order_rule(*o),
                          "std::for_each over '" + tokens[j].text + "', " +
                              order_noun(*o));
          break;
        }
      }
      continue;
    }
    if (is_container_begin(ctx, tokens, i, &order)) {
      reporter.report(t.line, order_rule(order),
                      "iterator over '" + t.text + "', " + order_noun(order));
      continue;
    }
    if (is_pointer_hash(tokens, i)) {
      reporter.report(t.line, "taint-pointer-key",
                      "std::hash of a pointer: hash values depend on the "
                      "allocation addresses of this run");
    }
  }
}

/// Flow analysis over one function body.  Returns true when the function
/// returns a tainted value.  Findings only when `reporter` is non-null
/// (the fixpoint rounds pass null).
bool analyze_function_flow(TaintContext& ctx, const Scope& fn,
                           Reporter* reporter) {
  const std::vector<Token>& tokens = ctx.file.tokens;
  std::set<std::string> tainted(ctx.thread_locals.begin(),
                                ctx.thread_locals.end());
  bool returns_tainted = false;

  for (std::size_t i = fn.open + 1; i < fn.close && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident) {
      if (is_assignment_op(t.text) && i > fn.open + 1) {
        // lhs: nearest preceding identifier, skipping a subscript group.
        std::size_t j = i - 1;
        if (tokens[j].text == "]") {
          int depth = 0;
          while (j > fn.open) {
            if (tokens[j].text == "]") ++depth;
            if (tokens[j].text == "[" && --depth == 0) break;
            --j;
          }
          if (j > fn.open) --j;
        }
        if (tokens[j].is_ident) {
          // rhs: up to the statement end at this nesting level.
          std::size_t end = i + 1;
          int depth = 0;
          while (end < fn.close && end < tokens.size()) {
            const std::string& tx = tokens[end].text;
            if (tx == "(" || tx == "[") ++depth;
            if (tx == ")" || tx == "]") {
              if (depth == 0) break;
              --depth;
            }
            if ((tx == ";" || tx == ",") && depth == 0) break;
            ++end;
          }
          if (range_tainted(ctx, tainted, tokens, i + 1, end)) {
            tainted.insert(tokens[j].text);
          }
        }
      }
      continue;
    }
    if (t.text == "for" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      const std::size_t close = match_forward(tokens, i + 1);
      std::size_t colon = tokens.size();
      for (std::size_t j = i + 2; j < close; ++j) {
        if (tokens[j].text == ":") {
          colon = j;
          break;
        }
      }
      if (colon < tokens.size()) {
        bool src = range_tainted(ctx, tainted, tokens, colon + 1, close);
        for (std::size_t j = colon + 1; j < close && !src; ++j) {
          if (tokens[j].is_ident && ctx.container(tokens[j].text) != nullptr) {
            src = true;
          }
        }
        if (src) {
          for (const std::string& name :
               range_for_decls(tokens, i + 2, colon)) {
            tainted.insert(name);
          }
        }
      }
      continue;
    }
    if (t.text == "return") {
      std::size_t end = i + 1;
      while (end < fn.close && end < tokens.size() &&
             tokens[end].text != ";") {
        ++end;
      }
      if (range_tainted(ctx, tainted, tokens, i + 1, end)) {
        returns_tainted = true;
      }
      i = end;
      continue;
    }
    if (sink_words().count(t.text) != 0 && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      const std::size_t close = match_forward(tokens, i + 1);
      if (reporter != nullptr && close < tokens.size() &&
          range_tainted(ctx, tainted, tokens, i + 2, close)) {
        std::string which;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (tokens[j].is_ident && tainted.count(tokens[j].text) != 0) {
            which = tokens[j].text;
            break;
          }
        }
        reporter->report(
            t.line, "taint-flow",
            "nondeterministically-ordered value" +
                (which.empty() ? std::string() : " '" + which + "'") +
                " reaches ordering-sensitive sink '" + t.text +
                "': order it deterministically (sort, or key by JobId) "
                "before committing/writing");
      }
      // Do not skip the group: nested sinks/assignments inside argument
      // lists still need scanning.
    }
  }
  return returns_tainted;
}

}  // namespace

std::vector<Finding> analyze_taint(const SourceFile& file,
                                   const Options& options) {
  std::vector<Finding> findings;
  Reporter reporter(file, options, findings);

  TaintContext ctx{file, {}, {}, {}};
  for (const ContainerDecl& c : file.symbols.containers) {
    ctx.containers.emplace(c.name, c.order);
  }
  ctx.thread_locals.insert(file.symbols.thread_locals.begin(),
                           file.symbols.thread_locals.end());

  scan_sources(ctx, reporter);

  // Fixpoint over tainted-returning functions (intra-file), then a final
  // reporting round.
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (const Scope& s : file.scopes) {
      if (s.kind != ScopeKind::kFunction || s.name.empty()) continue;
      if (analyze_function_flow(ctx, s, nullptr) &&
          ctx.tainted_fns.insert(s.name).second) {
        changed = true;
      }
    }
    if (!changed) break;
  }
  for (const Scope& s : file.scopes) {
    if (s.kind != ScopeKind::kFunction) continue;
    analyze_function_flow(ctx, s, &reporter);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line < b.line || (a.line == b.line && a.rule < b.rule);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line && a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace mris::analyze
