// Pass 2: nondeterminism taint.
//
// Tracks values whose *order or identity* is implementation-defined as
// they flow through a translation unit, and flags both the sources
// themselves and any flow into an ordering-sensitive sink.  A strict
// superset of mris_lint's lexical `unordered-iter` rule: everything that
// rule flags is a taint source here, plus iterator-based loops, pointer
// keys/hashes, and thread_local state.
//
// Sources
//   taint-unordered    iteration over an unordered_* container: range-for,
//                      begin()/cbegin()/rbegin() iterators, std::for_each;
//   taint-pointer-key  ordered containers keyed by pointers (std::map<T*,..>,
//                      std::set<T*>) — iteration order is address order,
//                      which ASLR re-rolls every run — and std::hash<T*>;
//
// Flow (rule `taint-flow`)
//   * a variable initialized or assigned from a tainted expression is
//     tainted (per function body; compound assignments count);
//   * the loop variable of a range-for over a tainted container is
//     tainted, as is an iterator obtained from its begin()-family;
//   * thread_local variables are tainted at flow level only (their
//     *content* is often deterministic — e.g. a scratch pool — so mere
//     existence is not a finding, but letting one reach a sink is);
//   * a function returning a tainted value marks its callers' assignment
//     targets tainted (intra-file, one fixpoint round);
//   * a tainted value appearing in the argument list of an
//     ordering-sensitive sink — schedule commits (commit/try_commit),
//     event-queue operations (push/schedule_wakeup/record), or CSV/JSON
//     writers (write_csv/write_row/write_json/add_row/append/log_event) —
//     is a finding at the call line.
//
// The analysis is intra-file and lexical by design (see frontend.hpp);
// false positives are silenced with `// mris-analyze: allow(<rule>)`.
#pragma once

#include <vector>

#include "tools/mris_analyze/frontend.hpp"

namespace mris::analyze {

std::vector<Finding> analyze_taint(const SourceFile& file,
                                   const Options& options);

}  // namespace mris::analyze
