#include "tools/mris_analyze/frontend.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "tools/lint_core.hpp"

namespace mris::analyze {

namespace {

bool is_all_caps_macro(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (const char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      return lines;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
}

/// Two-char operator tokens the passes rely on (assignment detection,
/// qualified names, template closers).  Longest-match-first is unnecessary
/// because every entry is exactly two chars.
bool is_two_char_op(char a, char b) {
  static const char* kOps[] = {"::", "->", "==", "!=", "<=", ">=", "+=",
                               "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                               "&&", "||", "<<", ">>"};
  for (const char* op : kOps) {
    if (a == op[0] && b == op[1]) return true;
  }
  return false;
}

}  // namespace

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool token_is(const Token& t, const char* text) { return t.text == text; }

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

std::vector<Token> tokenize(const std::string& stripped) {
  std::vector<Token> tokens;
  int line = 1;
  bool at_line_start = true;
  for (std::size_t i = 0; i < stripped.size();) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip to end of line, honoring backslash
      // continuations (the taint/scope passes never look inside them; the
      // layering pass reads #include lines from the raw text instead).
      while (i < stripped.size()) {
        if (stripped[i] == '\\' && i + 1 < stripped.size() &&
            stripped[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (stripped[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (is_word_char(c)) {
      std::size_t end = i;
      while (end < stripped.size() && is_word_char(stripped[end])) ++end;
      Token t;
      t.text = stripped.substr(i, end - i);
      t.line = line;
      t.is_ident = !std::isdigit(static_cast<unsigned char>(c));
      tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    if (c == '\\' && i + 1 < stripped.size() && stripped[i + 1] == '\n') {
      ++line;
      i += 2;
      at_line_start = false;
      continue;
    }
    Token t;
    if (i + 1 < stripped.size() && is_two_char_op(c, stripped[i + 1])) {
      t.text = stripped.substr(i, 2);
      i += 2;
    } else {
      t.text = std::string(1, c);
      ++i;
    }
    t.line = line;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size()) return tokens.size();
  const std::string& o = tokens[open].text;
  std::string close;
  if (o == "(") {
    close = ")";
  } else if (o == "[") {
    close = "]";
  } else if (o == "<") {
    close = ">";
  } else {
    return tokens.size();
  }
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == o) {
      ++depth;
    } else if (t == close) {
      if (--depth == 0) return i;
    } else if (o == "<" && t == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    }
  }
  return tokens.size();
}

// --- scopes ---------------------------------------------------------------

namespace {

/// Introducer state between statement boundaries at one nesting level.
struct Pending {
  std::size_t start = 0;  ///< first token of the would-be introducer
  bool saw_namespace = false;
  bool saw_class = false;
  bool saw_enum = false;
  bool saw_equals = false;  ///< '=' at paren depth 0 since `start`
  std::vector<std::pair<std::size_t, std::size_t>> groups;  ///< (...) spans
  void reset(std::size_t next) {
    start = next;
    saw_namespace = saw_class = saw_enum = saw_equals = false;
    groups.clear();
  }
};

/// Name of a classified scope, from its introducer tokens.
std::string class_like_name(const std::vector<Token>& tokens,
                            std::size_t begin, std::size_t brace) {
  // Last identifier before ':' (base clause) or the brace, skipping
  // 'final' and the class-key itself.
  std::string name;
  for (std::size_t i = begin; i < brace; ++i) {
    const Token& t = tokens[i];
    if (t.text == ":") break;
    if (!t.is_ident) continue;
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum" || t.text == "final" || t.text == "alignas" ||
        t.text == "public" || t.text == "private" || t.text == "protected") {
      continue;
    }
    name = t.text;
  }
  return name;
}

/// Function name (possibly qualified "A::f" or "~A") from a signature whose
/// parameter list is the paren group ending closest to the brace that is
/// not a trailing macro/noexcept group.
std::string function_name(const std::vector<Token>& tokens,
                          const Pending& pending) {
  if (pending.groups.empty()) return "";
  std::size_t gi = pending.groups.size();
  while (gi > 0) {
    const std::size_t open = pending.groups[gi - 1].first;
    if (open > pending.start) {
      const Token& before = tokens[open - 1];
      if (before.is_ident &&
          (before.text == "noexcept" || is_all_caps_macro(before.text))) {
        --gi;  // trailing noexcept(...) or MRIS_*(...) annotation
        continue;
      }
    }
    break;
  }
  if (gi == 0) return "";
  const std::size_t open = pending.groups[gi - 1].first;
  if (open == pending.start || open == 0) return "";
  std::size_t i = open - 1;
  if (!tokens[i].is_ident) return "";
  std::string name = tokens[i].text;
  // Fold in '~' (destructor) and 'A::' qualifiers.
  while (i > pending.start) {
    const Token& prev = tokens[i - 1];
    if (prev.text == "~") {
      name = "~" + name;
      --i;
    } else if (prev.text == "::" && i >= 2 && tokens[i - 2].is_ident) {
      name = tokens[i - 2].text + "::" + name;
      i -= 2;
    } else {
      break;
    }
  }
  return name;
}

}  // namespace

std::vector<Scope> analyze_scopes(const std::vector<Token>& tokens) {
  std::vector<Scope> scopes;
  std::vector<int> stack;          // indices into `scopes`
  std::vector<Pending> pendings;   // one per nesting level (incl. file level)
  pendings.push_back(Pending{});
  int paren_depth = 0;
  std::size_t group_open = 0;

  auto current_kind = [&]() -> ScopeKind {
    if (stack.empty()) return ScopeKind::kNamespace;  // file level
    return scopes[static_cast<std::size_t>(stack.back())].kind;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    Pending& pending = pendings.back();
    if (t.text == "(" || t.text == "[") {
      if (paren_depth == 0) group_open = i;
      ++paren_depth;
      continue;
    }
    if (t.text == ")" || t.text == "]") {
      if (paren_depth > 0 && --paren_depth == 0 && t.text == ")") {
        pending.groups.emplace_back(group_open, i);
      }
      continue;
    }
    if (paren_depth > 0) continue;
    if (t.text == ";") {
      pending.reset(i + 1);
      continue;
    }
    if (t.text == "namespace") {
      pending.saw_namespace = true;
    } else if (t.text == "class" || t.text == "struct" || t.text == "union") {
      pending.saw_class = true;
    } else if (t.text == "enum") {
      pending.saw_enum = true;
    } else if (t.text == "=") {
      pending.saw_equals = true;
    } else if (t.text == "{") {
      Scope s;
      s.open = i;
      s.close = tokens.size();
      s.sig_begin = pending.start;
      s.parent = stack.empty() ? -1 : stack.back();
      const ScopeKind outer = current_kind();
      if (pending.saw_equals) {
        s.kind = ScopeKind::kInit;
      } else if (pending.saw_namespace) {
        s.kind = ScopeKind::kNamespace;
        s.name = class_like_name(tokens, pending.start, i);
      } else if (pending.saw_enum) {
        s.kind = ScopeKind::kEnum;
        s.name = class_like_name(tokens, pending.start, i);
      } else if (pending.saw_class) {
        s.kind = ScopeKind::kClass;
        s.name = class_like_name(tokens, pending.start, i);
      } else if ((outer == ScopeKind::kNamespace ||
                  outer == ScopeKind::kClass) &&
                 !pending.groups.empty()) {
        s.kind = ScopeKind::kFunction;
        s.name = function_name(tokens, pending);
      } else if (outer == ScopeKind::kFunction || outer == ScopeKind::kBlock) {
        s.kind = ScopeKind::kBlock;
      } else {
        s.kind = ScopeKind::kInit;
      }
      scopes.push_back(s);
      stack.push_back(static_cast<int>(scopes.size()) - 1);
      pendings.push_back(Pending{});
      pendings.back().reset(i + 1);
    } else if (t.text == "}") {
      if (!stack.empty()) {
        scopes[static_cast<std::size_t>(stack.back())].close = i;
        stack.pop_back();
        pendings.pop_back();
        if (pendings.empty()) pendings.push_back(Pending{});
        pendings.back().reset(i + 1);
      }
    }
  }
  return scopes;
}

int enclosing_scope(const std::vector<Scope>& scopes, std::size_t tok) {
  int best = -1;
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    if (scopes[s].open < tok && tok < scopes[s].close) {
      if (best < 0 ||
          scopes[s].open > scopes[static_cast<std::size_t>(best)].open) {
        best = static_cast<int>(s);
      }
    }
  }
  return best;
}

int enclosing_function(const std::vector<Scope>& scopes, std::size_t tok) {
  int idx = enclosing_scope(scopes, tok);
  while (idx >= 0 &&
         scopes[static_cast<std::size_t>(idx)].kind != ScopeKind::kFunction) {
    idx = scopes[static_cast<std::size_t>(idx)].parent;
  }
  return idx;
}

std::string enclosing_class_name(const std::vector<Scope>& scopes, int idx) {
  while (idx >= 0) {
    const Scope& s = scopes[static_cast<std::size_t>(idx)];
    if (s.kind == ScopeKind::kClass) return s.name;
    idx = s.parent;
  }
  return "";
}

// --- symbol table ---------------------------------------------------------

namespace {

bool is_unordered_container(const std::string& ident) {
  return ident == "unordered_map" || ident == "unordered_set" ||
         ident == "unordered_multimap" || ident == "unordered_multiset";
}

bool is_ordered_assoc_container(const std::string& ident) {
  return ident == "map" || ident == "set" || ident == "multimap" ||
         ident == "multiset";
}

/// True when the first template argument of the group tokens[open..close]
/// (open is '<') contains a '*' at template depth 1 — a pointer key.
bool first_arg_is_pointer(const std::vector<Token>& tokens, std::size_t open,
                          std::size_t close) {
  int depth = 0;
  for (std::size_t i = open; i < close; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      --depth;
    } else if (t == ">>") {
      depth -= 2;
    } else if (depth == 1) {
      if (t == ",") return false;  // end of the key argument
      if (t == "*") return true;
      if (t == "(") i = match_forward(tokens, i);  // skip function types
    }
  }
  return false;
}

void collect_containers(const std::vector<Token>& tokens, SymbolTable& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident) continue;
    const bool unordered = is_unordered_container(t.text);
    const bool ordered = is_ordered_assoc_container(t.text);
    if (!unordered && !ordered) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "<") continue;
    const std::size_t close = match_forward(tokens, i + 1);
    if (close >= tokens.size()) continue;
    const bool pointer_key = first_arg_is_pointer(tokens, i + 1, close);
    if (!unordered && !pointer_key) continue;
    // Declared identifier after the closing '>' (skipping cv/ref tokens).
    std::size_t j = close + 1;
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j >= tokens.size() || !tokens[j].is_ident) continue;
    if (j + 1 < tokens.size() && tokens[j + 1].text == "(") continue;  // fn
    ContainerDecl decl;
    decl.name = tokens[j].text;
    decl.order =
        unordered ? ContainerOrder::kUnordered : ContainerOrder::kPointerKeyed;
    decl.line = tokens[j].line;
    out.containers.push_back(std::move(decl));
  }
  std::sort(out.containers.begin(), out.containers.end(),
            [](const ContainerDecl& a, const ContainerDecl& b) {
              return a.name < b.name || (a.name == b.name && a.line < b.line);
            });
}

void collect_thread_locals(const std::vector<Token>& tokens, SymbolTable& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text != "thread_local") continue;
    std::string last_ident;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      const std::string& tx = tokens[j].text;
      if (tx == ";" || tx == "=" || tx == "{") break;
      if (tokens[j].is_ident && tx != "const" && tx != "static" &&
          tx != "constexpr") {
        last_ident = tx;
      }
    }
    if (!last_ident.empty()) out.thread_locals.push_back(last_ident);
  }
  std::sort(out.thread_locals.begin(), out.thread_locals.end());
  out.thread_locals.erase(
      std::unique(out.thread_locals.begin(), out.thread_locals.end()),
      out.thread_locals.end());
}

void collect_guarded(const std::string& path, const std::vector<Token>& tokens,
                     const std::vector<Scope>& scopes, SymbolTable& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    const bool plain = t.text == "MRIS_GUARDED_BY";
    const bool ptr = t.text == "MRIS_PT_GUARDED_BY";
    if (!plain && !ptr) continue;
    if (i == 0 || !tokens[i - 1].is_ident) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    const std::size_t close = match_forward(tokens, i + 1);
    if (close >= tokens.size()) continue;
    GuardedField g;
    g.field = tokens[i - 1].text;
    for (std::size_t j = i + 2; j < close; ++j) g.mutex += tokens[j].text;
    g.cls = enclosing_class_name(scopes, enclosing_scope(scopes, i));
    g.file = path;
    g.line = t.line;
    g.pointer_guard = ptr;
    if (!g.mutex.empty()) out.guarded.push_back(std::move(g));
  }
}

}  // namespace

SourceFile make_source(const std::string& path, const std::string& text) {
  SourceFile f;
  f.path = path;
  f.original = text;
  f.stripped = lint::strip_comments_and_strings(text);
  f.original_lines = split_lines(f.original);
  f.stripped_lines = split_lines(f.stripped);
  f.tokens = tokenize(f.stripped);
  f.scopes = analyze_scopes(f.tokens);
  collect_containers(f.tokens, f.symbols);
  collect_thread_locals(f.tokens, f.symbols);
  collect_guarded(path, f.tokens, f.scopes, f.symbols);
  return f;
}

bool load_source(const std::string& path, SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = make_source(path, buffer.str());
  return true;
}

// --- suppressions ---------------------------------------------------------

namespace {

bool tag_allows(const std::string& line, const char* tag,
                const std::string& rule) {
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return false;
  const std::size_t open = line.find('(', pos);
  const std::size_t close = line.find(')', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  const std::string arg = line.substr(open + 1, close - open - 1);
  return arg == rule || arg == "all";
}

}  // namespace

bool line_allows(const std::string& original_line, const std::string& rule) {
  return tag_allows(original_line, "mris-analyze: allow(", rule);
}

bool file_allows(const std::vector<std::string>& original_lines,
                 const std::string& rule) {
  const std::size_t scan = std::min<std::size_t>(original_lines.size(), 10);
  for (std::size_t i = 0; i < scan; ++i) {
    if (tag_allows(original_lines[i], "mris-analyze: allow-file(", rule)) {
      return true;
    }
  }
  return false;
}

bool Reporter::suppressed(int line, const std::string& rule) const {
  if (file_allows(file_.original_lines, rule)) return true;
  const std::size_t i = static_cast<std::size_t>(line) - 1;
  if (i < file_.original_lines.size() &&
      line_allows(file_.original_lines[i], rule)) {
    return true;
  }
  if (i >= 1 && i - 1 < file_.original_lines.size() &&
      line_allows(file_.original_lines[i - 1], rule)) {
    return true;
  }
  return false;
}

void Reporter::report(int line, const std::string& rule,
                      const std::string& message) {
  if (!options_.rule_filter.empty() &&
      std::find(options_.rule_filter.begin(), options_.rule_filter.end(),
                rule) == options_.rule_filter.end()) {
    return;
  }
  if (options_.honor_suppressions && suppressed(line, rule)) return;
  sink_.push_back({file_.path, line, rule, message});
}

}  // namespace mris::analyze
