// Pass 3: thread-safety discipline.
//
// The sharded engine (ROADMAP) will run engine shards on the ThreadPool,
// so shared mutable state must be declared *as* shared before the
// concurrency lands.  src/util/contracts.hpp provides Clang-style
// annotation macros — MRIS_GUARDED_BY(m), MRIS_PT_GUARDED_BY(m),
// MRIS_REQUIRES(m) — that expand to the native attributes only under
// `-DMRIS_CLANG_THREAD_SAFETY` with clang, and to nothing otherwise.
// This pass enforces the discipline without needing clang at all:
//
//   ts-global       a mutable static / thread_local / namespace-scope
//                   variable in the scanned tree with no MRIS_GUARDED_BY
//                   annotation.  const/constexpr declarations, mutexes,
//                   and once_flags are exempt (they are either immutable
//                   or are themselves synchronization primitives);
//   ts-guard        a function body touches a field annotated
//                   MRIS_GUARDED_BY(m)/MRIS_PT_GUARDED_BY(m) but neither
//                   names `m` anywhere in its span (lock, lock_guard,
//                   MRIS_REQUIRES(m) in the signature — any mention
//                   counts) nor is a constructor/destructor of the
//                   owning class (single-threaded by construction);
//   ts-ref-capture  a lambda passed to ThreadPool::submit whose capture
//                   list captures by reference — the task may outlive
//                   the enclosing frame.  Legitimate uses (futures joined
//                   before the frame exits) carry an explicit
//                   `// mris-analyze: allow(ts-ref-capture)`.
//
// ts-guard uses the whole-project guarded-field registry: annotations
// live in headers while the touching code lives in .cpp files, so the
// pass runs over all files at once.
#pragma once

#include <vector>

#include "tools/mris_analyze/frontend.hpp"

namespace mris::analyze {

std::vector<Finding> analyze_threadsafety(const std::vector<SourceFile>& files,
                                          const Options& options);

}  // namespace mris::analyze
