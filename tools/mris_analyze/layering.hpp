// Pass 1: include-graph layering.
//
// Extracts the full `#include "..."` DAG of the scanned tree and enforces
// the architecture order
//
//   util -> core -> trace -> sim -> {knapsack, sched} -> testkit -> exp
//
// (an arrow means "may be included by everything to its right").  A module
// is the first path component relative to the scanned root (src/util ->
// "util").  Two kinds of finding:
//
//   layer-upward  an include whose target lives in a strictly higher
//                 layer than the including file's module;
//   layer-cycle   a file-level include cycle (also covers module cycles
//                 within one layer, e.g. knapsack <-> sched, since any
//                 module cycle implies a file cycle through the two
//                 modules' headers).
//
// The pass also produces the machine-readable graph summary written to
// results/ANALYSIS_layers.json: node/edge counts, per-module fan-in/out,
// the sorted module-edge list, and every violation (including suppressed
// ones, so the baseline is visible and diffable in CI).  The emitter is
// deterministic — fixed key order, sorted arrays, no timestamps — so a
// double run must produce byte-identical files.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tools/mris_analyze/frontend.hpp"

namespace mris::analyze {

struct IncludeEdge {
  std::string from;  ///< including file, path relative to the scanned root
  std::string to;    ///< included path as written (project-relative)
  int line = 0;
};

struct ModuleStats {
  int rank = -1;  ///< layer index, -1 for files outside the known layers
  int files = 0;
  int fan_in = 0;        ///< distinct other modules that include this one
  int fan_out = 0;       ///< distinct other modules this one includes
  int internal_edges = 0;  ///< includes staying inside the module
};

struct Violation {
  std::string rule;
  std::string file;
  int line = 0;
  std::string detail;
  bool suppressed = false;
};

struct LayeringResult {
  std::vector<Finding> findings;  ///< reportable (unsuppressed) findings
  std::vector<Violation> violations;  ///< all, incl. suppressed (baseline)
  int file_count = 0;
  int edge_count = 0;
  std::map<std::string, ModuleStats> modules;
  /// (from, to) -> include count, cross-module only, sorted by key.
  std::map<std::pair<std::string, std::string>, int> module_edges;
};

/// The enforced layer order; layers[i] may include layers[j] iff j <= i
/// (same-layer cross-module edges are legal but must stay acyclic).
const std::vector<std::vector<std::string>>& default_layers();

/// `#include "..."` targets of one file (quoted form only — system
/// includes are outside the architecture).  Lines whose directive survives
/// comment stripping only; paths come from the original text because the
/// stripper blanks string literal contents.
std::vector<IncludeEdge> collect_includes(const SourceFile& file,
                                          const std::string& rel_path);

/// Runs the pass over `files` (parallel arrays of frontend views and
/// root-relative paths).
LayeringResult analyze_layering(
    const std::vector<SourceFile>& files,
    const std::vector<std::string>& rel_paths, const Options& options,
    const std::vector<std::vector<std::string>>& layers = default_layers());

/// Deterministic JSON / markdown renderings of the graph summary.
std::string layers_json(const LayeringResult& result);
std::string layers_markdown(const LayeringResult& result);

}  // namespace mris::analyze
