// Shared token/AST-lite frontend for mris_analyze, the project's
// multi-pass whole-project analyzer (layering, nondeterminism taint,
// thread-safety discipline — see the pass headers next to this file).
//
// The frontend is deliberately one level above mris_lint's line lexer and
// several levels below a real C++ parser:
//
//   * comments/strings are blanked via lint_core's
//     strip_comments_and_strings (newlines preserved, so token line
//     numbers survive);
//   * the stripped text is tokenized (identifiers, numbers, and a small
//     set of multi-char operators; preprocessor lines are skipped);
//   * braces are matched into a scope tree whose nodes are classified as
//     namespace / class / enum / function / block / initializer by the
//     tokens that introduced them — enough to know, for any token, which
//     function body and which class it lives in;
//   * a per-file symbol table records the declarations the passes care
//     about: variables of unordered container types, containers keyed by
//     pointers, thread_local variables, and fields annotated with the
//     MRIS_GUARDED_BY family from util/contracts.hpp.
//
// Suppressions mirror mris_lint's, under the analyzer's own tag so the
// two baselines stay independent: `// mris-analyze: allow(<rule>)` on the
// offending line or the line above, `// mris-analyze: allow-file(<rule>)`
// within the first 10 lines, and `all` as a wildcard rule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mris::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" — clickable compiler format.
std::string format_finding(const Finding& finding);

struct Options {
  bool honor_suppressions = true;
  /// When non-empty, only findings whose rule is listed are reported.
  std::vector<std::string> rule_filter;
};

// --- tokens ---------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;  ///< identifier or keyword (not number/punct)
};

/// Tokenizes stripped source.  Identifiers/keywords and numbers are one
/// token each; `::`, `->`, and two-char operators (==, <=, +=, ...) are
/// single tokens; every other punctuation char is its own token.
/// Preprocessor directives (`#...` to end of line, following line
/// continuations) produce no tokens.
std::vector<Token> tokenize(const std::string& stripped);

// --- scopes ---------------------------------------------------------------

enum class ScopeKind {
  kNamespace,
  kClass,     ///< class/struct/union body
  kEnum,
  kFunction,  ///< function/constructor/lambda-free body at ns/class scope
  kBlock,     ///< any brace inside a function (if/for/lambda/plain block)
  kInit,      ///< braced initializer (`= {...}`, `Type x{...}` args)
};

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::size_t open = 0;        ///< token index of '{'
  std::size_t close = 0;       ///< token index of matching '}'
  std::size_t sig_begin = 0;   ///< token index where the introducer starts
                               ///< (namespace/class/function signature)
  std::string name;            ///< namespace/class/function name ("" if n/a)
  int parent = -1;             ///< index into the scope list, -1 for none
};

/// Brace-matched, classified scope list in source order.  Never throws on
/// malformed input; unbalanced braces simply truncate the tree.
std::vector<Scope> analyze_scopes(const std::vector<Token>& tokens);

/// Innermost scope containing token index `tok` (or -1).
int enclosing_scope(const std::vector<Scope>& scopes, std::size_t tok);

/// Innermost *function* scope containing token `tok` (or -1).
int enclosing_function(const std::vector<Scope>& scopes, std::size_t tok);

/// Name of the class scope lexically enclosing scope `idx` ("" if none).
std::string enclosing_class_name(const std::vector<Scope>& scopes, int idx);

// --- per-file symbol table ------------------------------------------------

enum class ContainerOrder {
  kUnordered,    ///< unordered_{map,set,multimap,multiset}
  kPointerKeyed  ///< std::map/std::set (ordered) keyed by a pointer type
};

struct ContainerDecl {
  std::string name;  ///< declared identifier
  ContainerOrder order = ContainerOrder::kUnordered;
  int line = 0;
};

struct GuardedField {
  std::string cls;    ///< enclosing class name ("" at namespace scope)
  std::string field;  ///< annotated identifier
  std::string mutex;  ///< guard expression text, e.g. "mutex_"
  std::string file;
  int line = 0;
  bool pointer_guard = false;  ///< MRIS_PT_GUARDED_BY
};

struct SymbolTable {
  std::vector<ContainerDecl> containers;
  std::vector<std::string> thread_locals;  ///< thread_local variable names
  std::vector<GuardedField> guarded;
};

// --- source file ----------------------------------------------------------

struct SourceFile {
  std::string path;       ///< as reported in findings
  std::string original;
  std::string stripped;   ///< strip_comments_and_strings(original)
  std::vector<std::string> original_lines;
  std::vector<std::string> stripped_lines;
  std::vector<Token> tokens;
  std::vector<Scope> scopes;
  SymbolTable symbols;
};

/// Builds the full frontend view of one translation unit given as text.
SourceFile make_source(const std::string& path, const std::string& text);

/// Reads and analyzes a file.  Returns false (leaving `out` empty) when
/// the file cannot be read.
bool load_source(const std::string& path, SourceFile& out);

// --- suppressions ---------------------------------------------------------

/// `// mris-analyze: allow(<rule>)` on this exact line text.
bool line_allows(const std::string& original_line, const std::string& rule);

/// `// mris-analyze: allow-file(<rule>)` within the first 10 lines.
bool file_allows(const std::vector<std::string>& original_lines,
                 const std::string& rule);

/// Collects `finding` unless suppressed or filtered out by `options`.
class Reporter {
 public:
  Reporter(const SourceFile& file, const Options& options,
           std::vector<Finding>& sink)
      : file_(file), options_(options), sink_(sink) {}

  void report(int line, const std::string& rule, const std::string& message);

  /// True if the finding would be dropped by a suppression comment (used
  /// by passes that must record suppressed results, e.g. the layering
  /// JSON baseline).
  bool suppressed(int line, const std::string& rule) const;

 private:
  const SourceFile& file_;
  const Options& options_;
  std::vector<Finding>& sink_;
};

// --- small shared helpers -------------------------------------------------

bool is_word_char(char c);
bool token_is(const Token& t, const char* text);

/// Index of the matching ')' / '>' / ']' for the opener at `open`
/// (tokens[open] must be the opener); tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open);

}  // namespace mris::analyze
