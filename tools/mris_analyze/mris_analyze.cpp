// mris_analyze: multi-pass whole-project analyzer (see frontend.hpp).
//
//   mris_analyze [--no-suppress] [--rule R]... [--json PATH] [--md PATH]
//                <src-root>
//
// Passes: include-graph layering (layer-upward, layer-cycle),
// nondeterminism taint (taint-unordered, taint-pointer-key, taint-flow),
// thread-safety discipline (ts-global, ts-guard, ts-ref-capture).
//
// Exit codes: 0 clean, 1 findings, 2 usage/I-O error.  --json/--md write
// the deterministic layering summary regardless of findings, so CI can
// upload the report from a red run too.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint_core.hpp"
#include "tools/mris_analyze/frontend.hpp"
#include "tools/mris_analyze/layering.hpp"
#include "tools/mris_analyze/taint.hpp"
#include "tools/mris_analyze/threadsafety.hpp"

namespace {

constexpr const char* kRules[] = {
    "layer-upward",  "layer-cycle",       "taint-unordered",
    "taint-pointer-key", "taint-flow",    "ts-global",
    "ts-guard",      "ts-ref-capture",
};

int usage() {
  std::cerr << "usage: mris_analyze [--no-suppress] [--rule R]... "
               "[--json PATH] [--md PATH] [--list-rules] <src-root>\n";
  return 2;
}

bool write_text(const std::string& path, const std::string& text) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// Path relative to the scanned root, for module attribution.
std::string relative_to(const std::string& root, const std::string& path) {
  std::string prefix = root;
  while (!prefix.empty() && prefix.back() == '/') prefix.pop_back();
  if (path.size() > prefix.size() + 1 &&
      path.compare(0, prefix.size(), prefix) == 0 &&
      path[prefix.size()] == '/') {
    return path.substr(prefix.size() + 1);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using mris::analyze::Finding;
  using mris::analyze::Options;
  using mris::analyze::SourceFile;

  Options options;
  std::string root, json_path, md_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-suppress") {
      options.honor_suppressions = false;
    } else if (arg == "--rule" && i + 1 < argc) {
      options.rule_filter.push_back(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--md" && i + 1 < argc) {
      md_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const char* r : kRules) std::cout << r << "\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();

  const std::vector<std::string> paths = mris::lint::collect_sources(root);
  if (paths.empty()) {
    std::cerr << "mris_analyze: no .hpp/.cpp sources under '" << root
              << "'\n";
    return 2;
  }

  std::vector<SourceFile> files;
  std::vector<std::string> rel_paths;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    SourceFile f;
    if (!mris::analyze::load_source(p, f)) {
      std::cerr << "mris_analyze: cannot read '" << p << "'\n";
      return 2;
    }
    files.push_back(std::move(f));
    rel_paths.push_back(relative_to(root, p));
  }

  std::vector<Finding> findings;
  const mris::analyze::LayeringResult layering =
      mris::analyze::analyze_layering(files, rel_paths, options);
  findings.insert(findings.end(), layering.findings.begin(),
                  layering.findings.end());
  for (const SourceFile& f : files) {
    const std::vector<Finding> taint = mris::analyze::analyze_taint(f, options);
    findings.insert(findings.end(), taint.begin(), taint.end());
  }
  const std::vector<Finding> ts =
      mris::analyze::analyze_threadsafety(files, options);
  findings.insert(findings.end(), ts.begin(), ts.end());

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    std::cout << mris::analyze::format_finding(f) << "\n";
  }

  if (!json_path.empty() &&
      !write_text(json_path, mris::analyze::layers_json(layering))) {
    std::cerr << "mris_analyze: cannot write '" << json_path << "'\n";
    return 2;
  }
  if (!md_path.empty() &&
      !write_text(md_path, mris::analyze::layers_markdown(layering))) {
    std::cerr << "mris_analyze: cannot write '" << md_path << "'\n";
    return 2;
  }

  if (findings.empty()) {
    std::cout << "mris_analyze: " << paths.size() << " files, "
              << layering.edge_count << " include edges: clean\n";
    return 0;
  }
  std::cout << "mris_analyze: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return 1;
}
