#include "tools/mris_analyze/threadsafety.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>

namespace mris::analyze {

namespace {

/// Types that are immutable-by-qualifier or internally synchronized; a
/// static of one of these is not unguarded shared state.
bool window_exempts(const std::vector<Token>& tokens, std::size_t a,
                    std::size_t b) {
  static const std::set<std::string> kExempt = {
      "const",       "constexpr",        "constinit",
      "using",       "mutex",            "shared_mutex",
      "recursive_mutex",                 "once_flag",
      "condition_variable",              "condition_variable_any",
      "atomic",      "atomic_flag",      "atomic_bool",
      "atomic_int",  "atomic_size_t",    "MRIS_GUARDED_BY",
      "MRIS_PT_GUARDED_BY",
  };
  for (std::size_t i = a; i < b && i < tokens.size(); ++i) {
    if (tokens[i].is_ident && kExempt.count(tokens[i].text) != 0) return true;
  }
  return false;
}

std::string last_ident(const std::vector<Token>& tokens, std::size_t a,
                       std::size_t b) {
  std::string name;
  for (std::size_t i = a; i < b && i < tokens.size(); ++i) {
    if (tokens[i].is_ident) name = tokens[i].text;
  }
  return name;
}

/// ts-global on `static` / `thread_local` declarations (any scope: file
/// statics, function-local statics, and static data members all create
/// process- or thread-wide mutable state).
void scan_keyword_globals(const SourceFile& file, Reporter& reporter) {
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident || (t.text != "static" && t.text != "thread_local")) {
      continue;
    }
    if (i > 0 && tokens[i - 1].is_ident &&
        (tokens[i - 1].text == "static" ||
         tokens[i - 1].text == "thread_local")) {
      continue;  // `static thread_local` — handled at the first keyword
    }
    std::size_t j = i + 1;
    // Fold a doubled specifier so the window starts at the declaration.
    if (j < tokens.size() && tokens[j].is_ident &&
        (tokens[j].text == "static" || tokens[j].text == "thread_local")) {
      ++j;
    }
    const std::size_t begin = j;
    bool skip = false;
    for (; j < tokens.size(); ++j) {
      const std::string& tx = tokens[j].text;
      if (tx == "(") {
        // Function declaration, ctor-style initializer, or an annotation
        // macro's argument list — all either fine or checked elsewhere.
        skip = true;
        break;
      }
      if (tx == ";" || tx == "{" || tx == "=") break;
    }
    if (skip || j >= tokens.size()) continue;
    if (window_exempts(tokens, begin, j)) continue;
    const std::string name = last_ident(tokens, begin, j);
    if (name.empty()) continue;
    reporter.report(
        t.line, "ts-global",
        "mutable " + t.text + " '" + name +
            "' has no MRIS_GUARDED_BY annotation: shared mutable state "
            "must name its guard (or be const/atomic) before the sharded "
            "engine runs on the pool");
  }
}

/// ts-global on namespace-scope `Type name = init;` declarations that use
/// no storage keyword (e.g. out-of-line static member definitions,
/// anonymous-namespace globals).
void scan_namespace_globals(const SourceFile& file, Reporter& reporter) {
  const std::vector<Token>& tokens = file.tokens;
  std::map<std::size_t, std::size_t> jump;  // scope open -> close
  for (const Scope& s : file.scopes) {
    if (s.kind != ScopeKind::kNamespace && s.close > s.open) {
      jump[s.open] = s.close;
    }
  }
  std::size_t stmt_start = 0;
  int depth = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto jt = jump.find(i);
    if (jt != jump.end()) {
      i = jt->second;
      stmt_start = i + 1;
      depth = 0;
      continue;
    }
    const std::string& tx = tokens[i].text;
    if (tx == "(" || tx == "[") ++depth;
    if ((tx == ")" || tx == "]") && depth > 0) --depth;
    if (tx != ";" || depth != 0) continue;
    // Statement [stmt_start, i): mutable iff it assigns at depth 0 with
    // no qualifier/keyword that makes it constant or non-variable.
    std::size_t eq = i;
    int d = 0;
    bool saw_group = false;
    bool excluded = false;
    int idents_before = 0;
    for (std::size_t k = stmt_start; k < i; ++k) {
      const std::string& kx = tokens[k].text;
      if (kx == "(" || kx == "[") {
        ++d;
        if (eq == i) saw_group = true;
      }
      if ((kx == ")" || kx == "]") && d > 0) --d;
      if (kx == "=" && d == 0 && eq == i) eq = k;
      if (tokens[k].is_ident && eq == i) ++idents_before;
      if (tokens[k].is_ident &&
          (kx == "static" || kx == "thread_local" || kx == "extern" ||
           kx == "using" || kx == "typedef" || kx == "namespace" ||
           kx == "template" || kx == "operator" || kx == "friend" ||
           kx == "class" || kx == "struct" || kx == "enum")) {
        excluded = true;
      }
    }
    if (eq < i && !saw_group && !excluded && idents_before >= 2 &&
        !window_exempts(tokens, stmt_start, eq)) {
      const std::string name = last_ident(tokens, stmt_start, eq);
      if (!name.empty()) {
        reporter.report(
            tokens[eq].line, "ts-global",
            "mutable namespace-scope variable '" + name +
                "' has no MRIS_GUARDED_BY annotation: shared mutable "
                "state must name its guard (or be const/atomic)");
      }
    }
    stmt_start = i + 1;
  }
}

/// ts-ref-capture: by-reference lambda captures handed to
/// ThreadPool::submit.
void scan_ref_captures(const SourceFile& file, Reporter& reporter) {
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!tokens[i].is_ident || tokens[i].text != "submit") continue;
    if (tokens[i + 1].text != "(") continue;
    const std::size_t close = match_forward(tokens, i + 1);
    for (std::size_t j = i + 2; j < close && j < tokens.size(); ++j) {
      if (tokens[j].text != "[") continue;
      const std::size_t lb_close = match_forward(tokens, j);
      bool by_ref = false;
      for (std::size_t k = j + 1; k < lb_close && k < tokens.size(); ++k) {
        if (tokens[k].text == "&") by_ref = true;
      }
      if (by_ref) {
        reporter.report(
            tokens[j].line, "ts-ref-capture",
            "lambda submitted to the ThreadPool captures by reference: "
            "the task can outlive the enclosing frame — capture by value, "
            "or join the future before returning and suppress with a "
            "rationale");
      }
      j = lb_close;
    }
  }
}

struct GuardEntry {
  std::string cls;
  std::string mutex_token;  ///< last identifier of the guard expression
  std::string mutex_expr;   ///< full guard expression, for messages
};

std::string last_ident_of_expr(const std::string& expr) {
  std::string cur, last;
  for (const char c : expr) {
    if (is_word_char(c)) {
      cur.push_back(c);
    } else {
      if (!cur.empty()) last = cur;
      cur.clear();
    }
  }
  if (!cur.empty()) last = cur;
  return last;
}

/// Class context of a function scope: lexically enclosing class, or the
/// qualifier of an out-of-line `A::f` definition.
std::string function_class(const SourceFile& file, int scope_idx) {
  const Scope& s = file.scopes[static_cast<std::size_t>(scope_idx)];
  std::string cls = enclosing_class_name(file.scopes, scope_idx);
  if (!cls.empty()) return cls;
  const std::size_t sep = s.name.rfind("::");
  if (sep != std::string::npos) {
    const std::string qual = s.name.substr(0, sep);
    const std::size_t prev = qual.rfind("::");
    return prev == std::string::npos ? qual : qual.substr(prev + 2);
  }
  return "";
}

bool is_ctor_or_dtor(const std::string& fn_name, const std::string& cls) {
  if (cls.empty()) return false;
  const std::size_t sep = fn_name.rfind("::");
  const std::string leaf =
      sep == std::string::npos ? fn_name : fn_name.substr(sep + 2);
  return leaf == cls || leaf == "~" + cls;
}

/// ts-guard over one file, against the whole-project registry.
void scan_guard_discipline(
    const SourceFile& file,
    const std::multimap<std::string, GuardEntry>& registry,
    Reporter& reporter) {
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t si = 0; si < file.scopes.size(); ++si) {
    const Scope& fn = file.scopes[si];
    if (fn.kind != ScopeKind::kFunction) continue;
    const std::string cls = function_class(file, static_cast<int>(si));
    std::set<std::string> reported_fields;
    for (std::size_t i = fn.open + 1; i < fn.close && i < tokens.size();
         ++i) {
      const Token& t = tokens[i];
      if (!t.is_ident) continue;
      const auto range = registry.equal_range(t.text);
      if (range.first == range.second) continue;
      if (reported_fields.count(t.text) != 0) continue;
      for (auto it = range.first; it != range.second; ++it) {
        const GuardEntry& g = it->second;
        // Fields of a specific class only bind inside that class's
        // functions; namespace-scope guarded variables bind everywhere.
        if (!g.cls.empty() && g.cls != cls) continue;
        if (is_ctor_or_dtor(fn.name, g.cls)) continue;
        bool names_guard = false;
        for (std::size_t k = fn.sig_begin;
             k <= fn.close && k < tokens.size() && !names_guard; ++k) {
          if (tokens[k].is_ident && tokens[k].text == g.mutex_token) {
            names_guard = true;
          }
        }
        if (!names_guard) {
          reported_fields.insert(t.text);
          reporter.report(
              t.line, "ts-guard",
              "'" + (fn.name.empty() ? std::string("<lambda/fn>") : fn.name) +
                  "' touches '" + t.text + "' (MRIS_GUARDED_BY(" +
                  g.mutex_expr +
                  ")) but never names the guard: take the lock or annotate "
                  "the function MRIS_REQUIRES(" +
                  g.mutex_expr + ")");
        }
        break;
      }
    }
  }
}

}  // namespace

std::vector<Finding> analyze_threadsafety(const std::vector<SourceFile>& files,
                                          const Options& options) {
  std::multimap<std::string, GuardEntry> registry;
  for (const SourceFile& f : files) {
    for (const GuardedField& g : f.symbols.guarded) {
      GuardEntry e;
      e.cls = g.cls;
      e.mutex_expr = g.mutex;
      e.mutex_token = last_ident_of_expr(g.mutex);
      if (e.mutex_token.empty()) e.mutex_token = g.mutex;
      registry.emplace(g.field, std::move(e));
    }
  }

  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    Reporter reporter(f, options, findings);
    scan_keyword_globals(f, reporter);
    scan_namespace_globals(f, reporter);
    scan_ref_captures(f, reporter);
    scan_guard_discipline(f, registry, reporter);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace mris::analyze
