// Core of mris_lint: the project's determinism and style rules as plain
// text analysis, separated from main() so the rules are unit-testable.
//
// Rules (ids are what suppression comments name):
//   determinism-rand   std::rand/srand/random_device/mt19937 outside
//                      util/rng.hpp — simulations must use the seeded
//                      xoshiro streams so runs replay bit-exactly.
//   determinism-time   time()/clock()/chrono clock reads — wall-clock
//                      values make results irreproducible.
//   unordered-iter     range-for over an unordered container — iteration
//                      order is implementation-defined, so any
//                      result-affecting loop over one is nondeterministic.
//   pragma-once        every header starts with #pragma once.
//   no-float           float is banned (doubles only): mixed precision
//                      makes capacity comparisons platform-dependent.
//   naked-assert       assert()/<cassert> outside util/contracts.hpp —
//                      NDEBUG builds (the default RelWithDebInfo tier)
//                      compile asserts out; use MRIS_EXPECT/ENSURE/
//                      INVARIANT instead.
//   stdout             std::cout/printf in library code — libraries
//                      return data; binaries own the terminal.
//   raw-io             fwrite/fsync/fdatasync/pwrite/::write outside
//                      src/sim/recovery/ — durable writes must go through
//                      JournalWriter/SnapshotStore, which add retry with
//                      backoff, CRC framing, and fsync batching.
//
// Suppressions: append `// mris-lint: allow(<rule>)` (or allow(all)) to
// the offending line or the line above it.  A file-wide exemption is
// `// mris-lint: allow-file(<rule>)` within the first 10 lines.
#pragma once

#include <string>
#include <vector>

namespace mris::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  bool honor_suppressions = true;
};

/// Blanks out comments and string/character literal contents (newlines
/// preserved, so line numbers survive).  Handles escapes, raw strings,
/// and digit separators (1'000 is not a char literal).
std::string strip_comments_and_strings(const std::string& source);

/// Lints one translation unit given as text.  `path` is used for
/// reporting, for header detection (.hpp), and for the two allow-listed
/// files (util/rng.hpp, util/contracts.hpp).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const Options& options = {});

/// Reads and lints a file; an unreadable file is itself a finding.
std::vector<Finding> lint_file(const std::string& path,
                               const Options& options = {});

/// All .hpp/.cpp files under `root` (or just {root} when it is a file),
/// sorted so output and exit codes are deterministic.
std::vector<std::string> collect_sources(const std::string& root);

/// "file:line: [rule] message" — the clickable compiler-style format.
std::string format_finding(const Finding& finding);

// --- stale-suppression audit ----------------------------------------------

/// A `// mris-lint: allow(...)` comment that no longer suppresses
/// anything: re-linting with suppressions ignored produces no finding of
/// the allowed rule on the comment's line or the line below (for
/// allow-file: anywhere in the file).  `allow(all)` matches any rule.
struct StaleSuppression {
  std::string file;
  int line = 0;       ///< 1-based line of the allow comment
  std::string rule;   ///< the rule named in the comment (may be "all")
  bool file_wide = false;  ///< allow-file(...) form
};

/// Audits one translation unit's suppression comments against its raw
/// (unsuppressed) findings.
std::vector<StaleSuppression> stale_suppressions(const std::string& path,
                                                 const std::string& source);

/// Reads and audits a file; unreadable files yield no entries (lint_file
/// already reports them).
std::vector<StaleSuppression> stale_suppressions_in_file(
    const std::string& path);

/// "file:line: stale 'mris-lint: allow(rule)' — remove this comment".
std::string format_stale(const StaleSuppression& stale);

}  // namespace mris::lint
