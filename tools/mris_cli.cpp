// mris — command-line front end to the library.
//
//   mris generate --jobs 5000 --seed 7 --out workload.csv
//   mris stats    --workload workload.csv --machines 4
//   mris simulate --workload workload.csv --scheduler mris --machines 4
//   mris simulate --synthetic --jobs 2000 --scheduler pq-wsjf --gantt
//   mris compare  --synthetic --jobs 2000 --machines 2
//
// Workload sources (choose one):
//   --workload FILE            native workload CSV (see trace/io.hpp)
//   --azure-vm FILE --azure-vmtype FILE   Azure packing trace CSV tables
//   --azure-sqlite FILE        Azure packing trace sqlite database
//   --synthetic                built-in Azure-like generator
//
// Common transforms:
//   --downsample F --offset D  keep every F-th job starting at D
//   --augment R                extend to R resources (Sec 7.5.3)
//   --no-merge-storage         keep hdd/ssd separate (5 resources)
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/schedule_io.hpp"
#include "exp/ascii.hpp"
#include "exp/gantt.hpp"
#include "exp/runner.hpp"
#include "trace/azure.hpp"
#include "trace/azure_sqlite.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "trace/sampling.hpp"
#include "trace/statistics.hpp"
#include "util/flags.hpp"

namespace {

using namespace mris;

int usage() {
  std::puts(
      "usage: mris <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate   synthesize an Azure-like workload and write it as CSV\n"
      "             --jobs N --seed S --tenants T --demand-scale X --out F\n"
      "  stats      characterize a workload (load factor, distributions)\n"
      "  simulate   run one scheduler online; print metrics\n"
      "             --scheduler NAME [--gantt] [--out-schedule F]\n"
      "             engine: --shards S [--threads T] (sharded epoch/barrier\n"
      "             engine, docs/SHARDING.md; results never depend on T)\n"
      "             durability: --state-dir D [--snapshot-every N]\n"
      "             [--resume-from D] (snapshot + write-ahead journal in D)\n"
      "  compare    run the full paper lineup (+ DRF, HYBRID) side by side\n"
      "\n"
      "workload sources: --workload F | --azure-vm F --azure-vmtype F |\n"
      "                  --azure-sqlite F | --synthetic [--jobs N --seed S]\n"
      "transforms:       --downsample F [--offset D] --augment R\n"
      "                  --no-merge-storage\n"
      "cluster:          --machines M (default 4)\n"
      "schedulers:       mris mris-greedy mris-nobf mris-evscan pq[-heur]\n"
      "                  capq[-heur] tetris bfexec drf hybrid\n");
  return 2;
}

/// Builds the workload from whichever source flags selected.
trace::Workload load_workload(const util::Flags& flags) {
  const bool synthetic = flags.get_bool("synthetic", false);
  const std::string workload_path = flags.get("workload", "");
  const std::string azure_vm = flags.get("azure-vm", "");
  const std::string azure_vmtype = flags.get("azure-vmtype", "");
  const std::string azure_sqlite = flags.get("azure-sqlite", "");

  trace::Workload w;
  if (!workload_path.empty()) {
    w = trace::read_workload_csv_file(workload_path);
  } else if (!azure_sqlite.empty()) {
    trace::AzureLoadOptions opts;
    opts.max_jobs =
        static_cast<std::size_t>(flags.get_int("max-jobs", 0));
    w = trace::load_azure_trace_sqlite(azure_sqlite, opts);
  } else if (!azure_vm.empty() || !azure_vmtype.empty()) {
    if (azure_vm.empty() || azure_vmtype.empty()) {
      throw std::invalid_argument(
          "--azure-vm and --azure-vmtype must be given together");
    }
    trace::AzureLoadOptions opts;
    opts.max_jobs =
        static_cast<std::size_t>(flags.get_int("max-jobs", 0));
    w = trace::load_azure_trace_files(azure_vm, azure_vmtype, opts);
  } else if (synthetic) {
    trace::GeneratorConfig cfg;
    cfg.num_jobs = static_cast<std::size_t>(flags.get_int("jobs", 10000));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    cfg.num_tenants =
        static_cast<std::size_t>(flags.get_int("tenants", 50));
    cfg.demand_scale = flags.get_double("demand-scale", 1.0);
    w = generate_azure_like(cfg);
  } else {
    throw std::invalid_argument(
        "no workload source given (--workload / --azure-vm + --azure-vmtype"
        " / --azure-sqlite / --synthetic)");
  }

  // Transforms, in the paper's order: merge storage, downsample, augment.
  if (!flags.get_bool("no-merge-storage", false) &&
      w.num_resources() == 5) {
    w = merge_storage(w);
  }
  const auto factor =
      static_cast<std::size_t>(flags.get_int("downsample", 1));
  if (factor > 1) {
    const auto offset = static_cast<std::size_t>(flags.get_int("offset", 0));
    w = downsample(w, factor, offset);
  } else {
    (void)flags.get_int("offset", 0);
  }
  const auto augment = static_cast<std::size_t>(flags.get_int("augment", 0));
  if (augment > 0) {
    util::Xoshiro256 rng(
        static_cast<std::uint64_t>(flags.get_int("seed", 1)) ^ 0xa06u);
    w = augment_resources(w, augment, trace::kCpu, rng);
  }
  return w;
}

int cmd_generate(const util::Flags& flags) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = static_cast<std::size_t>(flags.get_int("jobs", 10000));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.num_tenants = static_cast<std::size_t>(flags.get_int("tenants", 50));
  cfg.demand_scale = flags.get_double("demand-scale", 1.0);
  const trace::Workload w = generate_azure_like(cfg);
  const std::string out = flags.get("out", "workload.csv");
  trace::write_workload_csv_file(out, w);
  std::printf("wrote %zu jobs (%zu resources) to %s\n", w.jobs.size(),
              w.num_resources(), out.c_str());
  return 0;
}

int cmd_stats(const util::Flags& flags) {
  const trace::Workload w = load_workload(flags);
  const int machines = static_cast<int>(flags.get_int("machines", 4));
  std::printf("%s", format_stats(compute_stats(w), machines).c_str());
  const auto hist = arrival_histogram(w, 24);
  std::size_t peak = 1;
  for (std::size_t c : hist) peak = std::max(peak, c);
  std::printf("arrivals over the window (24 slices):\n");
  for (std::size_t c : hist) {
    const auto bar = static_cast<std::size_t>(
        50.0 * static_cast<double>(c) / static_cast<double>(peak));
    std::printf("  %6zu |%s\n", c, std::string(bar, '#').c_str());
  }
  return 0;
}

int cmd_simulate(const util::Flags& flags) {
  const trace::Workload w = load_workload(flags);
  const int machines = static_cast<int>(flags.get_int("machines", 4));
  const Instance inst = to_instance(w, machines);
  const exp::SchedulerSpec spec =
      exp::parse_scheduler_spec(flags.get("scheduler", "mris"));

  // Durability (docs/RECOVERY.md): --state-dir enables snapshot + journal
  // files there; --resume-from restores a crashed run's state dir instead.
  recovery::RecoveryOptions rec;
  const std::string resume_from = flags.get("resume-from", "");
  const std::string state_dir =
      resume_from.empty() ? flags.get("state-dir", "") : resume_from;
  const bool durable = !state_dir.empty();
  if (durable) {
    std::filesystem::create_directories(state_dir);
    rec.snapshot_path = state_dir + "/engine.mrsn";
    rec.journal_path = state_dir + "/engine.mrjl";
    rec.snapshot_every =
        static_cast<std::uint64_t>(flags.get_int("snapshot-every", 64));
    rec.resume = !resume_from.empty();
  } else {
    (void)flags.get_int("snapshot-every", 0);  // meaningless without a dir
  }

  exp::EngineConfig engine;
  engine.shards = static_cast<int>(flags.get_int("shards", 0));
  engine.threads = static_cast<int>(flags.get_int("threads", 1));

  Schedule sched;
  const exp::EvalResult r = exp::evaluate_with_schedule(
      inst, spec, sched, nullptr, durable ? &rec : nullptr, engine);
  std::printf("scheduler:     %s\n", spec.display_name().c_str());
  std::printf("jobs/machines: %zu / %d\n", r.num_jobs, machines);
  std::printf("AWCT:          %s\n", exp::format_num(r.awct).c_str());
  std::printf("AWFT:          %s\n", exp::format_num(r.awft).c_str());
  std::printf("makespan:      %s\n", exp::format_num(r.makespan).c_str());
  std::printf("mean delay:    %s\n", exp::format_num(r.mean_delay).c_str());
  if (durable) {
    std::printf(
        "durability:    %llu snapshots, %llu journal records"
        " (%llu bytes)%s%s\n",
        static_cast<unsigned long long>(r.recovery.snapshots_taken),
        static_cast<unsigned long long>(r.recovery.journal_records),
        static_cast<unsigned long long>(r.recovery.journal_bytes),
        r.recovery.resumed_from_snapshot   ? ", resumed from snapshot"
        : r.recovery.resumed_journal_only  ? ", resumed journal-only"
                                           : "",
        r.recovery.degraded_in_memory      ? ", DEGRADED to in-memory"
        : r.recovery.degraded_journal_only ? ", DEGRADED to journal-only"
                                           : "");
    if (r.recovery.resume_replayed_events > 0) {
      std::printf("               %llu events replayed from the journal\n",
                  static_cast<unsigned long long>(
                      r.recovery.resume_replayed_events));
    }
  }

  if (flags.get_bool("gantt", false)) {
    std::printf("\n%s", exp::render_gantt(inst, sched).c_str());
  }
  const std::string out = flags.get("out-schedule", "");
  if (!out.empty()) {
    write_schedule_csv_file(out, inst, sched);
    std::printf("schedule written to %s\n", out.c_str());
  }

  const std::string log_path = flags.get("log-events", "");
  if (!log_path.empty()) {
    // Re-run with event recording (runs are deterministic) and dump the
    // full engine event log as CSV.
    auto scheduler = exp::make_scheduler(spec, inst);
    RunOptions run_opts;
    run_opts.record_events = true;
    run_opts.shards = engine.shards;
    run_opts.threads = engine.threads;
    const RunResult rr = run_online(inst, *scheduler, run_opts);
    std::ofstream log_file(log_path);
    if (!log_file) {
      throw std::runtime_error("cannot write " + log_path);
    }
    log_file << "t,kind,job,machine,start\n";
    for (const EventRecord& e : rr.log) {
      log_file << e.t << ',' << event_kind_name(e.kind) << ',' << e.job
               << ',' << e.machine << ','
               << (e.kind == EventRecord::Kind::kCommit
                       ? std::to_string(e.start)
                       : std::string())
               << '\n';
    }
    std::printf("%zu engine events written to %s\n", rr.log.size(),
                log_path.c_str());
  }
  return 0;
}

int cmd_compare(const util::Flags& flags) {
  const trace::Workload w = load_workload(flags);
  const int machines = static_cast<int>(flags.get_int("machines", 4));
  const Instance inst = to_instance(w, machines);

  std::vector<exp::SchedulerSpec> lineup = exp::comparison_lineup();
  lineup.push_back(exp::SchedulerSpec::Drf());
  lineup.push_back(exp::SchedulerSpec::Hybrid());

  std::vector<std::vector<std::string>> table = {
      {"scheduler", "AWCT", "AWFT", "makespan", "mean delay"}};
  for (const auto& spec : lineup) {
    const exp::EvalResult r = exp::evaluate(inst, spec);
    table.push_back({spec.display_name(), exp::format_num(r.awct),
                     exp::format_num(r.awft), exp::format_num(r.makespan),
                     exp::format_num(r.mean_delay)});
  }
  std::printf("%s", exp::render_table(table).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const util::Flags flags(argc - 1, argv + 1);
    int rc;
    if (command == "generate") {
      rc = cmd_generate(flags);
    } else if (command == "stats") {
      rc = cmd_stats(flags);
    } else if (command == "simulate") {
      rc = cmd_simulate(flags);
    } else if (command == "compare") {
      rc = cmd_compare(flags);
    } else {
      return usage();
    }
    for (const std::string& flag : flags.unconsumed()) {
      std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
