// mris_lint — the project's custom determinism/style linter.
//
// Usage:
//   mris_lint [--no-suppress] [--list-rules] <file-or-dir>...
//   mris_lint --stale <file-or-dir>...
//
// Exit status: 0 when every scanned file is clean, 1 otherwise (so it can
// run as a ctest).  Findings go to stdout in compiler format
// (file:line: [rule] message); the summary goes to stderr.
//
// --stale audits the suppression comments instead of the code: it lists
// every `// mris-lint: allow(...)` whose rule no longer fires on the
// covered line(s), fix-style — each output line is a comment that can be
// deleted outright.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint_core.hpp"

namespace {

constexpr const char* kRuleHelp =
    "rules:\n"
    "  determinism-rand  rand/srand/random_device/mt19937 outside "
    "util/rng.hpp\n"
    "  determinism-time  time()/clock()/chrono clock reads\n"
    "  unordered-iter    range-for over an unordered container\n"
    "  pragma-once       header missing #pragma once\n"
    "  no-float          float (doubles only)\n"
    "  naked-assert      assert()/<cassert> outside util/contracts.hpp\n"
    "  stdout            std::cout/printf in library code\n"
    "  raw-io            fwrite/fsync/pwrite/::write outside "
    "src/sim/recovery/\n"
    "  raw-simd          immintrin.h / _mm* intrinsics outside "
    "src/util/simd.hpp\n"
    "suppress with '// mris-lint: allow(<rule>)' on or above the line,\n"
    "or '// mris-lint: allow-file(<rule>)' in the first 10 lines.\n";

}  // namespace

int main(int argc, char** argv) {
  mris::lint::Options options;
  bool stale_mode = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-suppress") {
      options.honor_suppressions = false;
    } else if (arg == "--stale") {
      stale_mode = true;
    } else if (arg == "--list-rules") {
      std::fputs(kRuleHelp, stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs("usage: mris_lint [--no-suppress] [--list-rules] "
                 "<file-or-dir>...\n",
                 stdout);
      std::fputs(kRuleHelp, stdout);
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fputs("mris_lint: no files or directories given (try --help)\n",
               stderr);
    return 2;
  }

  std::size_t files = 0;
  std::size_t total = 0;
  for (const std::string& root : roots) {
    const std::vector<std::string> sources =
        mris::lint::collect_sources(root);
    if (sources.empty()) {
      std::fprintf(stderr, "mris_lint: nothing to lint under '%s'\n",
                   root.c_str());
      return 2;
    }
    for (const std::string& path : sources) {
      ++files;
      if (stale_mode) {
        for (const mris::lint::StaleSuppression& s :
             mris::lint::stale_suppressions_in_file(path)) {
          std::fprintf(stdout, "%s\n", mris::lint::format_stale(s).c_str());
          ++total;
        }
      } else {
        for (const mris::lint::Finding& f :
             mris::lint::lint_file(path, options)) {
          std::fprintf(stdout, "%s\n", mris::lint::format_finding(f).c_str());
          ++total;
        }
      }
    }
  }
  std::fprintf(stderr, "mris_lint: %zu %s in %zu file(s)\n", total,
               stale_mode ? "stale suppression(s)" : "finding(s)", files);
  return total == 0 ? 0 : 1;
}
