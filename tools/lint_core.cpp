#include "tools/lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mris::lint {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `text` contains `word` at position `pos` with non-word
/// characters (or boundaries) on both sides.
bool word_at(const std::string& text, std::size_t pos,
             const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_word_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < text.size() && is_word_char(text[end])) return false;
  return true;
}

/// First position of `word` (as a whole word) in `text`, npos if absent.
std::size_t find_word(const std::string& text, const std::string& word) {
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string::npos;
}

/// True if `word` occurs as a whole word and the next non-space character
/// after it is '(' — i.e. it is used as a call.
bool has_call(const std::string& text, const std::string& word) {
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    if (!word_at(text, pos, word)) continue;
    std::size_t after = pos + word.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    if (after < text.size() && text[after] == '(') return true;
  }
  return false;
}

/// True when `line` contains `<name>.begin(`-family access (also `->`,
/// and the cbegin/rbegin/crbegin variants) on the given container name.
bool has_begin_access(const std::string& line, const std::string& name) {
  static const std::vector<std::string> kBeginWords = {"begin", "cbegin",
                                                       "rbegin", "crbegin"};
  for (std::size_t pos = line.find(name); pos != std::string::npos;
       pos = line.find(name, pos + 1)) {
    if (!word_at(line, pos, name)) continue;
    std::size_t i = pos + name.size();
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '.') {
      ++i;
    } else if (i + 1 < line.size() && line[i] == '-' && line[i + 1] == '>') {
      i += 2;
    } else {
      continue;
    }
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    for (const std::string& w : kBeginWords) {
      if (!word_at(line, i, w)) continue;
      std::size_t after = i + w.size();
      while (after < line.size() &&
             (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
      if (after < line.size() && line[after] == '(') return true;
    }
  }
  return false;
}

/// True when `line` contains an x86 vector-intrinsic token: an identifier
/// starting `_mm` (`_mm_`, `_mm256_add_pd`, `_mm512_...`) or a vector
/// register type `__m128`/`__m256`/`__m512` (any element suffix).
bool has_vector_intrinsic(const std::string& line) {
  static const std::vector<std::string> kPrefixes = {"_mm", "__m128", "__m256",
                                                     "__m512"};
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    if (!is_word_char(line[pos])) continue;
    if (pos > 0 && is_word_char(line[pos - 1])) continue;  // mid-identifier
    for (const std::string& prefix : kPrefixes) {
      if (line.compare(pos, prefix.size(), prefix) == 0) return true;
    }
  }
  return false;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      return lines;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
}

bool line_allows(const std::string& original_line, const std::string& rule) {
  const std::size_t tag = original_line.find("mris-lint: allow(");
  if (tag == std::string::npos) return false;
  const std::size_t open = original_line.find('(', tag);
  const std::size_t close = original_line.find(')', open);
  if (close == std::string::npos) return false;
  const std::string arg = original_line.substr(open + 1, close - open - 1);
  return arg == rule || arg == "all";
}

bool file_allows(const std::vector<std::string>& original_lines,
                 const std::string& rule) {
  const std::size_t scan = std::min<std::size_t>(original_lines.size(), 10);
  for (std::size_t i = 0; i < scan; ++i) {
    const std::string& line = original_lines[i];
    const std::size_t tag = line.find("mris-lint: allow-file(");
    if (tag == std::string::npos) continue;
    const std::size_t open = line.find('(', tag);
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    const std::string arg = line.substr(open + 1, close - open - 1);
    if (arg == rule || arg == "all") return true;
  }
  return false;
}

/// Identifiers declared (anywhere in the file) with an unordered_* type:
/// for every `unordered_xxx<...>` occurrence, the identifier following the
/// closing angle bracket (skipping `&`, `*`, and `const`).  Range-fors over
/// these names are flagged even when the declaration is lines away.
std::vector<std::string> collect_unordered_names(const std::string& stripped) {
  std::vector<std::string> names;
  for (std::size_t pos = stripped.find("unordered_"); pos != std::string::npos;
       pos = stripped.find("unordered_", pos + 1)) {
    if (pos > 0 && is_word_char(stripped[pos - 1])) continue;
    std::size_t i = pos;
    while (i < stripped.size() && is_word_char(stripped[i])) ++i;
    if (i >= stripped.size() || stripped[i] != '<') continue;
    int depth = 0;
    for (; i < stripped.size(); ++i) {
      if (stripped[i] == '<') ++depth;
      if (stripped[i] == '>' && --depth == 0) break;
    }
    if (i >= stripped.size()) continue;
    ++i;  // past '>'
    for (;;) {
      while (i < stripped.size() &&
             (stripped[i] == ' ' || stripped[i] == '&' || stripped[i] == '*')) {
        ++i;
      }
      if (word_at(stripped, i, "const")) {
        i += 5;
        continue;
      }
      break;
    }
    std::size_t end = i;
    while (end < stripped.size() && is_word_char(stripped[end])) ++end;
    if (end > i) names.push_back(stripped.substr(i, end - i));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

struct RuleContext {
  const std::string& path;
  const std::vector<std::string>& original_lines;
  const Options& options;
  std::vector<Finding>& findings;

  void report(int line, const std::string& rule, const std::string& message) {
    if (options.honor_suppressions) {
      if (file_allows(original_lines, rule)) return;
      const std::size_t i = static_cast<std::size_t>(line) - 1;
      if (i < original_lines.size() && line_allows(original_lines[i], rule)) {
        return;
      }
      if (i >= 1 && i - 1 < original_lines.size() &&
          line_allows(original_lines[i - 1], rule)) {
        return;
      }
    }
    findings.push_back({path, line, rule, message});
  }
};

}  // namespace

std::string strip_comments_and_strings(const std::string& source) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  std::string out = source;
  State state = State::kCode;
  std::string raw_delim;       // )delim" that terminates the raw string
  char last_code_char = '\0';  // last significant char seen in kCode

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — R (possibly after u8/u/U/L) directly
          // before the quote.
          if (last_code_char == 'R') {
            const std::size_t open = source.find('(', i + 1);
            if (open != std::string::npos) {
              raw_delim = ")" + source.substr(i + 1, open - i - 1) + "\"";
              state = State::kRawString;
              out[i] = ' ';
              break;
            }
          }
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && is_word_char(last_code_char)) {
          // Digit separator (1'000) or u8'x' — only a literal when the
          // previous char ends a number/identifier is *not* true; keep
          // separators intact by skipping the literal state.
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        } else {
          if (c != ' ' && c != '\t') last_code_char = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          last_code_char = '\0';
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          last_code_char = '\0';
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          last_code_char = '\0';
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
          last_code_char = '\0';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const Options& options) {
  std::vector<Finding> findings;
  const std::string stripped = strip_comments_and_strings(source);
  const std::vector<std::string> original_lines = split_lines(source);
  const std::vector<std::string> lines = split_lines(stripped);
  RuleContext ctx{path, original_lines, options, findings};

  const bool is_header = ends_with(path, ".hpp") || ends_with(path, ".h");
  const bool rng_exempt = ends_with(path, "util/rng.hpp");
  const bool contracts_exempt = ends_with(path, "util/contracts.hpp");
  // The recovery layer owns durable file IO: it wraps every write in
  // retry/backoff, CRC framing, and fsync batching.  Raw writes anywhere
  // else bypass those guarantees.
  const bool raw_io_exempt = path.find("sim/recovery/") != std::string::npos;
  // The SIMD kernel layer owns vector intrinsics: it pairs every AVX2
  // kernel with a scalar reference and an identity proof.  Intrinsics
  // anywhere else dodge that contract (and its fuzz coverage).
  const bool raw_simd_exempt = ends_with(path, "util/simd.hpp");

  if (is_header) {
    const bool has_pragma =
        std::any_of(lines.begin(), lines.end(), [](const std::string& l) {
          return l.find("#pragma once") != std::string::npos;
        });
    if (!has_pragma) {
      ctx.report(1, "pragma-once", "header is missing #pragma once");
    }
  }

  static const std::vector<std::string> kRandWords = {
      "rand", "srand", "rand_r", "random_device", "mt19937", "mt19937_64"};
  static const std::vector<std::string> kClockWords = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  const std::vector<std::string> unordered_names =
      collect_unordered_names(stripped);

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const int lineno = static_cast<int>(i) + 1;

    if (!rng_exempt) {
      for (const std::string& word : kRandWords) {
        if (find_word(line, word) != std::string::npos) {
          ctx.report(lineno, "determinism-rand",
                     "'" + word +
                         "' breaks seeded determinism; use the xoshiro "
                         "streams in util/rng.hpp");
        }
      }
      if (has_call(line, "time") || has_call(line, "clock") ||
          has_call(line, "gettimeofday")) {
        ctx.report(lineno, "determinism-time",
                   "wall-clock reads make runs irreproducible; derive times "
                   "from the simulation clock");
      }
      for (const std::string& word : kClockWords) {
        if (find_word(line, word) != std::string::npos) {
          ctx.report(lineno, "determinism-time",
                     "'std::chrono::" + word +
                         "' is a wall-clock read; results must not depend "
                         "on it");
        }
      }
    }

    bool unordered_flagged = false;
    if (find_word(line, "for") != std::string::npos) {
      const bool direct = line.find("unordered_") != std::string::npos;
      const bool via_name = std::any_of(
          unordered_names.begin(), unordered_names.end(),
          [&](const std::string& name) {
            return find_word(line, name) != std::string::npos;
          });
      if (direct || via_name) {
        unordered_flagged = true;
        ctx.report(lineno, "unordered-iter",
                   "iterating an unordered container has "
                   "implementation-defined order; use a sorted container or "
                   "sort the keys first");
      }
    }
    // Iterator-based traversal (`it = m.begin()`) and std::for_each reach
    // the same implementation-defined order without `for` on the line.
    if (!unordered_flagged) {
      const bool via_begin = std::any_of(
          unordered_names.begin(), unordered_names.end(),
          [&](const std::string& name) {
            return has_begin_access(line, name);
          });
      const bool via_for_each =
          has_call(line, "for_each") &&
          (line.find("unordered_") != std::string::npos ||
           std::any_of(unordered_names.begin(), unordered_names.end(),
                       [&](const std::string& name) {
                         return find_word(line, name) != std::string::npos;
                       }));
      if (via_begin || via_for_each) {
        ctx.report(lineno, "unordered-iter",
                   "iterating an unordered container (iterator or "
                   "std::for_each form) has implementation-defined order; "
                   "use a sorted container or sort the keys first");
      }
    }

    if (find_word(line, "float") != std::string::npos) {
      ctx.report(lineno, "no-float",
                 "float is banned (doubles only): mixed precision makes "
                 "capacity comparisons platform-dependent");
    }

    if (!contracts_exempt) {
      if (has_call(line, "assert") ||
          line.find("<cassert>") != std::string::npos ||
          line.find("<assert.h>") != std::string::npos) {
        ctx.report(lineno, "naked-assert",
                   "assert is compiled out in NDEBUG (RelWithDebInfo) "
                   "builds; use MRIS_EXPECT/MRIS_ENSURE/MRIS_INVARIANT from "
                   "util/contracts.hpp");
      }
    }

    if (find_word(line, "cout") != std::string::npos ||
        has_call(line, "printf")) {
      ctx.report(lineno, "stdout",
                 "library code must not write to stdout; return data and "
                 "let binaries print");
    }

    if (!raw_simd_exempt) {
      if (line.find("immintrin.h") != std::string::npos ||
          line.find("x86intrin.h") != std::string::npos ||
          line.find("emmintrin.h") != std::string::npos ||
          line.find("xmmintrin.h") != std::string::npos ||
          has_vector_intrinsic(line)) {
        ctx.report(lineno, "raw-simd",
                   "x86 vector intrinsics outside src/util/simd.hpp; add a "
                   "kernel to the dispatch table there (scalar reference + "
                   "identity fuzz) instead of open-coding intrinsics");
      }
    }

    if (!raw_io_exempt) {
      static const std::vector<std::string> kRawIoWords = {
          "fwrite", "fsync", "fdatasync", "pwrite", "pwritev", "writev"};
      for (const std::string& word : kRawIoWords) {
        if (has_call(line, word)) {
          ctx.report(lineno, "raw-io",
                     "'" + word +
                         "' outside the recovery IO layer; durable writes "
                         "must go through JournalWriter/SnapshotStore "
                         "(src/sim/recovery/), which add retry, CRC "
                         "framing, and fsync batching");
        }
      }
      // The write(2) syscall, but only when global-qualified (::write) —
      // method calls like store->write() and names like write_csv are fine.
      for (std::size_t pos = line.find("::write"); pos != std::string::npos;
           pos = line.find("::write", pos + 1)) {
        if (pos > 0 && (is_word_char(line[pos - 1]) || line[pos - 1] == ':')) {
          continue;  // namespace-qualified identifier, not the global scope
        }
        if (!word_at(line, pos + 2, "write")) continue;  // ::write_csv etc.
        std::size_t after = pos + 7;
        while (after < line.size() &&
               (line[after] == ' ' || line[after] == '\t')) {
          ++after;
        }
        if (after < line.size() && line[after] == '(') {
          ctx.report(lineno, "raw-io",
                     "'::write' outside the recovery IO layer; durable "
                     "writes must go through JournalWriter/SnapshotStore "
                     "(src/sim/recovery/)");
        }
      }
    }
  }
  return findings;
}

std::vector<Finding> lint_file(const std::string& path,
                               const Options& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str(), options);
}

std::vector<std::string> collect_sources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root);
    return files;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

namespace {

/// Extracts the rule named by an allow/allow-file tag in `line`, if any.
bool parse_allow_tag(const std::string& line, const std::string& tag,
                     std::string& rule_out) {
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return false;
  const std::size_t open = line.find('(', pos);
  const std::size_t close = line.find(')', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  rule_out = line.substr(open + 1, close - open - 1);
  return true;
}

}  // namespace

std::vector<StaleSuppression> stale_suppressions(const std::string& path,
                                                 const std::string& source) {
  Options raw;
  raw.honor_suppressions = false;
  const std::vector<Finding> findings = lint_source(path, source, raw);
  const std::vector<std::string> lines = split_lines(source);

  const auto rule_fires_at = [&](const std::string& rule, int line) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         return f.line == line &&
                                (rule == "all" || f.rule == rule);
                       });
  };
  const auto rule_fires_anywhere = [&](const std::string& rule) {
    return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
      return rule == "all" || f.rule == rule;
    });
  };

  std::vector<StaleSuppression> stale;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    std::string rule;
    // A line-level allow covers its own line and the one below.
    if (parse_allow_tag(lines[i], "mris-lint: allow(", rule)) {
      if (!rule_fires_at(rule, lineno) && !rule_fires_at(rule, lineno + 1)) {
        stale.push_back({path, lineno, rule, /*file_wide=*/false});
      }
    }
    if (i < 10 &&
        parse_allow_tag(lines[i], "mris-lint: allow-file(", rule)) {
      if (!rule_fires_anywhere(rule)) {
        stale.push_back({path, lineno, rule, /*file_wide=*/true});
      }
    }
  }
  return stale;
}

std::vector<StaleSuppression> stale_suppressions_in_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return stale_suppressions(path, buffer.str());
}

std::string format_stale(const StaleSuppression& stale) {
  const std::string form = stale.file_wide ? "allow-file" : "allow";
  return stale.file + ":" + std::to_string(stale.line) +
         ": stale 'mris-lint: " + form + "(" + stale.rule +
         ")' — the rule no longer fires here; remove this comment";
}

}  // namespace mris::lint
