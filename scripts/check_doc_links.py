#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files and anchors.

Scans the given markdown files (or, with no arguments, the repo's
documentation set: README.md, DESIGN.md, EXPERIMENTS.md, THEORY.md,
ROADMAP.md and docs/*.md) for inline links and images
`[text](target)` / `![alt](target)`.  External schemes (http, https,
mailto) are ignored; every other target is resolved relative to the
linking file and must exist.

Fragments are validated too: `#anchor` (same-page) and `file.md#anchor`
targets must name a heading that exists in the target file, using
GitHub's slug rule (lowercase, spaces to dashes, punctuation stripped,
duplicate slugs suffixed -1, -2, ...).  Fragments pointing into
non-markdown files are not checked.

Runs as a ctest (`doc_links`), so a renamed or deleted file — or a
reworded heading — breaks CI rather than readers.  Exit status: 0 when
every link resolves, 1 otherwise (broken links are listed in file:line:
form).
"""
import os
import re
import sys

# Inline link or image: [text](target) — target up to the first ')' or
# space (markdown titles `[x](file "title")` keep only the path part).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, mailto:, ...
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# GitHub slugging keeps word characters (underscore included) and
# dashes; drops the rest.  Backticks and link syntax are removed before
# slugging; '*' falls to SLUG_STRIP_RE.  '_' is deliberately kept: in
# this repo's headings it appears inside code spans (`BENCH_*.json`),
# where GitHub treats it as literal, not emphasis.
SLUG_STRIP_RE = re.compile(r"[^\w\- ]", re.UNICODE)
MD_INLINE_RE = re.compile(r"[`]|\[([^\]]*)\]\([^)]*\)")


def default_files(repo_root):
    files = []
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "THEORY.md",
                 "ROADMAP.md"):
        path = os.path.join(repo_root, name)
        if os.path.isfile(path):
            files.append(path)
    docs = os.path.join(repo_root, "docs")
    if os.path.isdir(docs):
        for entry in sorted(os.listdir(docs)):
            if entry.endswith(".md"):
                files.append(os.path.join(docs, entry))
    return files


def slugify(heading):
    """GitHub's anchor slug for one heading (without dedup suffix)."""
    # Strip emphasis/code markers and reduce links to their text first.
    text = MD_INLINE_RE.sub(lambda m: m.group(1) or "", heading)
    text = SLUG_STRIP_RE.sub("", text.strip().lower())
    return text.replace(" ", "-")


def heading_anchors(path, cache={}):
    """The set of valid #anchors of a markdown file (GitHub slug rule)."""
    if path in cache:
        return cache[path]
    anchors = set()
    counts = {}
    in_fence = False
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                if line.lstrip().startswith("```"):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                match = HEADING_RE.match(line)
                if not match:
                    continue
                slug = slugify(match.group(2))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
    except OSError:
        pass
    cache[path] = anchors
    return anchors


def check_file(path):
    """Returns a list of 'file:line: message' strings for broken links."""
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            # Links inside fenced code blocks are examples, not navigation.
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if EXTERNAL_RE.match(target):
                    continue
                rel, _, fragment = target.partition("#")
                if rel:
                    resolved = os.path.normpath(os.path.join(base, rel))
                    if not os.path.exists(resolved):
                        broken.append(
                            f"{path}:{lineno}: broken link '{target}' "
                            f"(resolved to {resolved})")
                        continue
                else:
                    resolved = os.path.abspath(path)  # in-page anchor
                if fragment and resolved.endswith(".md"):
                    if fragment.lower() not in heading_anchors(resolved):
                        broken.append(
                            f"{path}:{lineno}: broken anchor '{target}' "
                            f"(no heading '#{fragment}' in {resolved})")
    return broken


def main(argv):
    if len(argv) > 1:
        files = argv[1:]
    else:
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        files = default_files(repo_root)
    if not files:
        print("check_doc_links: no markdown files found", file=sys.stderr)
        return 2
    broken = []
    for path in files:
        broken.extend(check_file(path))
    for message in broken:
        print(message)
    print(f"check_doc_links: {len(files)} files, {len(broken)} broken links",
          file=sys.stderr)
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
