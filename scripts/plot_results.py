#!/usr/bin/env python3
"""Plot the CSV or JSON series emitted by the bench binaries.

Every figure bench writes `results/results_<bench>.csv` (columns
    series,x,y,ci95_half_width
under the directory it ran in) plus a machine-readable
`results/BENCH_<bench>.json` summary (schema_version 1/2: a `series` array
of {name, x, y, ci95_half_width} objects; see bench/bench_common.hpp).
This script turns one or more of either format into matplotlib figures
(PNG next to each input file), shading the 95% confidence band where
present.

    ./scripts/plot_results.py results/results_fig3_arrival_rate.csv
    ./scripts/plot_results.py results/BENCH_fig3_arrival_rate.json
    ./scripts/plot_results.py --logx --logy results/results_*.csv

Benches that emit several metric families into one file prefix the series
name (`AWCT:...`, `WASTED:...`, `XOVER-AWCT:...`; see
bench/fault_degradation.cpp).  Use --metric to plot one family at a
time — series whose name is the prefix or starts with "<prefix>:":

    ./scripts/plot_results.py --metric WASTED --logx --logy \
        results/results_fault_degradation.csv
    ./scripts/plot_results.py --metric XOVER-AWCT \
        results/results_fault_degradation.csv

`BENCH_profile.json` carries per-workload and per-kernel speedup rows
(micro_profile's `workloads`, micro_kernels' `kernels`) instead of x/y
series; those files render as a horizontal speedup bar chart.
"""
import argparse
import collections
import csv
import json
import os
import sys


def load_series_csv(path):
    """Returns {series name: (xs, ys, cis)} preserving file order."""
    data = collections.OrderedDict()
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        required = {"series", "x", "y"}
        if not required.issubset(reader.fieldnames or ()):
            raise SystemExit(
                f"{path}: expected columns series,x,y[,ci95_half_width]")
        for row in reader:
            xs, ys, cis = data.setdefault(row["series"], ([], [], []))
            xs.append(float(row["x"]))
            ys.append(float(row["y"]))
            ci = row.get("ci95_half_width") or ""
            cis.append(float(ci) if ci else 0.0)
    return data


def load_series_json(path):
    """Loads a BENCH_<bench>.json summary (schema_version 1 or 2)."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") not in (1, 2):
        raise SystemExit(f"{path}: unsupported schema_version "
                         f"{doc.get('schema_version')!r}")
    if "series" not in doc:
        raise SystemExit(f"{path}: no 'series' array to plot "
                         f"(bench {doc.get('bench')!r})")
    data = collections.OrderedDict()
    for s in doc["series"]:
        cis = s.get("ci95_half_width") or []
        cis = cis + [0.0] * (len(s["x"]) - len(cis))
        data[s["name"]] = (list(s["x"]), list(s["y"]), cis)
    return data


def speedup_rows(doc):
    """Extracts (label, speedup) rows from a BENCH file that carries
    per-workload / per-kernel timing rows instead of x/y series
    (BENCH_profile.json: micro_profile's `workloads` vs LegacyProfile,
    micro_kernels' `kernels` scalar vs SIMD dispatch)."""
    rows = []
    for w in doc.get("workloads", []):
        if "speedup" in w:
            rows.append(("workload:" + w["name"], w["speedup"]))
    for k in doc.get("kernels", []):
        prefix = "e2e:" if k.get("kind") == "end_to_end" else "kernel:"
        rows.append((prefix + k["name"], k["speedup"]))
    return rows


def plot_speedup_bars(path, rows, args, plt):
    fig, ax = plt.subplots(figsize=(7, 0.5 + 0.4 * len(rows)))
    labels = [name for name, _ in rows]
    values = [v for _, v in rows]
    pos = range(len(rows))
    colors = ["tab:blue" if l.startswith("workload:") else
              "tab:green" if l.startswith("kernel:") else "tab:orange"
              for l in labels]
    ax.barh(pos, values, color=colors)
    ax.axvline(1.0, color="black", linewidth=0.8)
    ax.set_yticks(list(pos), labels=labels, fontsize=8)
    ax.invert_yaxis()
    for p, v in zip(pos, values):
        ax.text(v, p, f" {v:.2f}x", va="center", fontsize=8)
    title = (os.path.basename(path)
             .removeprefix("BENCH_").removesuffix(".json"))
    ax.set_title(title)
    ax.set_xlabel("speedup (x, higher is better)")
    ax.grid(True, axis="x", alpha=0.3)
    out = os.path.splitext(path)[0] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def load_series(path):
    if path.endswith(".json"):
        return load_series_json(path)
    return load_series_csv(path)


def plot_file(path, args, plt):
    if path.endswith(".json"):
        with open(path) as f:
            doc = json.load(f)
        rows = speedup_rows(doc)
        if rows and "series" not in doc:
            plot_speedup_bars(path, rows, args, plt)
            return
    data = load_series(path)
    if args.metric:
        data = collections.OrderedDict(
            (name, series) for name, series in data.items()
            if name == args.metric or name.startswith(args.metric + ":"))
        if not data:
            raise SystemExit(
                f"{path}: no series match --metric {args.metric}")
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, (xs, ys, cis) in data.items():
        line, = ax.plot(xs, ys, marker="o", markersize=3, label=name)
        if any(cis):
            lo = [y - c for y, c in zip(ys, cis)]
            hi = [y + c for y, c in zip(ys, cis)]
            ax.fill_between(xs, lo, hi, alpha=0.15, color=line.get_color())
    if args.logx:
        ax.set_xscale("log")
    if args.logy:
        ax.set_yscale("log")
    title = (os.path.basename(path)
             .removeprefix("results_").removeprefix("BENCH_")
             .removesuffix(".csv").removesuffix(".json"))
    ax.set_title(title)
    ax.set_xlabel(args.xlabel)
    ax.set_ylabel(args.ylabel)
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    suffix = f".{args.metric}" if args.metric else ""
    out = os.path.splitext(path)[0] + suffix + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_files", nargs="+", metavar="FILE",
                        help="results_<bench>.csv or BENCH_<bench>.json")
    parser.add_argument("--logx", action="store_true")
    parser.add_argument("--logy", action="store_true")
    parser.add_argument("--metric", default="",
                        help="only plot series named PREFIX or 'PREFIX:...' "
                             "(e.g. WASTED, XOVER-AWCT)")
    parser.add_argument("--xlabel", default="x")
    parser.add_argument("--ylabel", default="AWCT")
    args = parser.parse_args()
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")
    for path in args.csv_files:
        plot_file(path, args, plt)


if __name__ == "__main__":
    sys.exit(main())
