#!/bin/sh
# Hard-kill crash-recovery check for the mris_serve daemon (docs/DAEMON.md).
#
# Usage: daemon_crash_test.sh <mris_serve-binary> <scratch-dir>
#
# The daemon is cut down with kill -9 semantics mid-stream (--crash-after-jobs
# calls _Exit(137) straight out of the admission hot path: no destructors, no
# stream flushes, exactly what SIGKILL leaves behind), twice — once from a
# fresh run and once more during the resume — and then allowed to finish.
# The final sink output and placement checksum must be byte-identical to an
# uninterrupted reference run.  Exercised state: torn sink files, engine
# snapshots + event journal at an arbitrary cut, admission-journal tails,
# and full producer replay from seq 0 with dedup.
set -eu

BIN="$1"
DIR="$2"
JOBS=300
MACHINES=4
RESOURCES=4

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR"

"$BIN" pack --synthetic --jobs "$JOBS" --seed 11 --machines "$MACHINES" \
  --out stream.bin > /dev/null

run() {
  # shellcheck disable=SC2086  # $* is extra flags, intentionally split
  "$BIN" run --machines "$MACHINES" --resources "$RESOURCES" \
    --scheduler mris --in stream.bin --sink csv "$@"
}

# Reference: uninterrupted, no durability.
run --sink-out ref.csv > ref.out

# Crash 1: fresh daemon dies right after its 120th admission.
rc=0
run --sink-out crash.csv --state-dir state --snapshot-every 8 \
  --crash-after-jobs 120 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 137 ]; then
  echo "FAIL: first crash expected exit 137, got $rc" >&2
  exit 1
fi

# Crash 2: the resumed daemon (producer replays from seq 0) dies again at
# its 200th all-time admission.
rc=0
run --sink-out crash.csv --state-dir state --snapshot-every 8 --resume \
  --crash-after-jobs 200 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 137 ]; then
  echo "FAIL: second crash expected exit 137, got $rc" >&2
  exit 1
fi

# Final resume runs to completion.
run --sink-out final.csv --state-dir state --snapshot-every 8 --resume \
  > final.out

if ! cmp -s ref.csv final.csv; then
  echo "FAIL: resumed sink output differs from the uninterrupted run" >&2
  diff ref.csv final.csv | head -20 >&2 || true
  exit 1
fi
ref_sum=$(grep '^checksum' ref.out)
final_sum=$(grep '^checksum' final.out)
if [ "$ref_sum" != "$final_sum" ]; then
  echo "FAIL: checksum mismatch: '$ref_sum' vs '$final_sum'" >&2
  exit 1
fi

echo "OK: double-crashed daemon resumed to byte-identical output ($ref_sum)"
