file(REMOVE_RECURSE
  "CMakeFiles/mris_lint.dir/mris_lint.cpp.o"
  "CMakeFiles/mris_lint.dir/mris_lint.cpp.o.d"
  "mris_lint"
  "mris_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mris_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
