# Empty dependencies file for mris_analyze_core.
# This may be replaced when dependencies are built.
