file(REMOVE_RECURSE
  "CMakeFiles/mris_lint_core.dir/lint_core.cpp.o"
  "CMakeFiles/mris_lint_core.dir/lint_core.cpp.o.d"
  "libmris_lint_core.a"
  "libmris_lint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mris_lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
