file(REMOVE_RECURSE
  "CMakeFiles/analyze"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
