# Empty custom commands generated dependencies file for analyze.
# This may be replaced when dependencies are built.
