# Empty dependencies file for mris.
# This may be replaced when dependencies are built.
