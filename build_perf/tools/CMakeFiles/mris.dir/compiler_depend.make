# Empty compiler generated dependencies file for mris.
# This may be replaced when dependencies are built.
