# Empty compiler generated dependencies file for mris_analyze.
# This may be replaced when dependencies are built.
