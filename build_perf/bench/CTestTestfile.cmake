# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build_perf/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kernel_identity "/root/repo/build_perf/bench/micro_kernels")
set_tests_properties(kernel_identity PROPERTIES  ENVIRONMENT "MRIS_REPS=1;MRIS_BENCH_SCALE=0.25" LABELS "bench" WORKING_DIRECTORY "/root/repo/build_perf/bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;56;add_test;/root/repo/bench/CMakeLists.txt;0;")
