file(REMOVE_RECURSE
  "CMakeFiles/micro_profile.dir/micro_profile.cpp.o"
  "CMakeFiles/micro_profile.dir/micro_profile.cpp.o.d"
  "micro_profile"
  "micro_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
