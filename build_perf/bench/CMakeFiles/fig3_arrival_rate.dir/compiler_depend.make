# Empty compiler generated dependencies file for fig3_arrival_rate.
# This may be replaced when dependencies are built.
