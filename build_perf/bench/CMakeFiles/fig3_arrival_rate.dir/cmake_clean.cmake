file(REMOVE_RECURSE
  "CMakeFiles/fig3_arrival_rate.dir/fig3_arrival_rate.cpp.o"
  "CMakeFiles/fig3_arrival_rate.dir/fig3_arrival_rate.cpp.o.d"
  "fig3_arrival_rate"
  "fig3_arrival_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_arrival_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
