file(REMOVE_RECURSE
  "CMakeFiles/price_of_nonpreemption.dir/price_of_nonpreemption.cpp.o"
  "CMakeFiles/price_of_nonpreemption.dir/price_of_nonpreemption.cpp.o.d"
  "price_of_nonpreemption"
  "price_of_nonpreemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_of_nonpreemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
