file(REMOVE_RECURSE
  "CMakeFiles/fig4_machines.dir/fig4_machines.cpp.o"
  "CMakeFiles/fig4_machines.dir/fig4_machines.cpp.o.d"
  "fig4_machines"
  "fig4_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
