# Empty compiler generated dependencies file for unit_jobs_packing.
# This may be replaced when dependencies are built.
