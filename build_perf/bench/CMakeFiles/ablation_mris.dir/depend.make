# Empty dependencies file for ablation_mris.
# This may be replaced when dependencies are built.
