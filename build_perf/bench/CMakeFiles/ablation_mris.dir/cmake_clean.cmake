file(REMOVE_RECURSE
  "CMakeFiles/ablation_mris.dir/ablation_mris.cpp.o"
  "CMakeFiles/ablation_mris.dir/ablation_mris.cpp.o.d"
  "ablation_mris"
  "ablation_mris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
