# Empty compiler generated dependencies file for engine_scale.
# This may be replaced when dependencies are built.
