file(REMOVE_RECURSE
  "CMakeFiles/extensions.dir/extensions.cpp.o"
  "CMakeFiles/extensions.dir/extensions.cpp.o.d"
  "extensions"
  "extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
