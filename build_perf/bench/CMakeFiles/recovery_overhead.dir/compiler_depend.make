# Empty compiler generated dependencies file for recovery_overhead.
# This may be replaced when dependencies are built.
