# Empty compiler generated dependencies file for lemma41_adversarial.
# This may be replaced when dependencies are built.
