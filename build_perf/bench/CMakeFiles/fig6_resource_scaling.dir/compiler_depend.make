# Empty compiler generated dependencies file for fig6_resource_scaling.
# This may be replaced when dependencies are built.
