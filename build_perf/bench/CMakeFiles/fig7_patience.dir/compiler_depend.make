# Empty compiler generated dependencies file for fig7_patience.
# This may be replaced when dependencies are built.
