# Empty dependencies file for makespan_objective.
# This may be replaced when dependencies are built.
