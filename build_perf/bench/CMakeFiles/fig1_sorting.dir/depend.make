# Empty dependencies file for fig1_sorting.
# This may be replaced when dependencies are built.
