file(REMOVE_RECURSE
  "CMakeFiles/fault_degradation.dir/fault_degradation.cpp.o"
  "CMakeFiles/fault_degradation.dir/fault_degradation.cpp.o.d"
  "fault_degradation"
  "fault_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
