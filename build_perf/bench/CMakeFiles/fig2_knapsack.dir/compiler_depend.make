# Empty compiler generated dependencies file for fig2_knapsack.
# This may be replaced when dependencies are built.
