file(REMOVE_RECURSE
  "CMakeFiles/fig5_queuing_delay.dir/fig5_queuing_delay.cpp.o"
  "CMakeFiles/fig5_queuing_delay.dir/fig5_queuing_delay.cpp.o.d"
  "fig5_queuing_delay"
  "fig5_queuing_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_queuing_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
