file(REMOVE_RECURSE
  "CMakeFiles/testkit_test.dir/testkit/corpus_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/corpus_test.cpp.o.d"
  "CMakeFiles/testkit_test.dir/testkit/generators_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/generators_test.cpp.o.d"
  "CMakeFiles/testkit_test.dir/testkit/oracles_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/oracles_test.cpp.o.d"
  "CMakeFiles/testkit_test.dir/testkit/ratio_audit_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/ratio_audit_test.cpp.o.d"
  "CMakeFiles/testkit_test.dir/testkit/replay_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/replay_test.cpp.o.d"
  "CMakeFiles/testkit_test.dir/testkit/shrinker_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/shrinker_test.cpp.o.d"
  "CMakeFiles/testkit_test.dir/testkit/streams_test.cpp.o"
  "CMakeFiles/testkit_test.dir/testkit/streams_test.cpp.o.d"
  "testkit_test"
  "testkit_test.pdb"
  "testkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
