file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/baselines_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/baselines_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/bounds_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/bounds_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/drf_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/drf_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/eventscan_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/eventscan_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/fluid_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/fluid_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/heuristics_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/heuristics_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/hybrid_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/hybrid_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/mris_structure_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/mris_structure_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/mris_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/mris_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/optimal_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/optimal_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/pq_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/pq_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/vector_packing_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/vector_packing_test.cpp.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
