# Empty compiler generated dependencies file for exact_comparison.
# This may be replaced when dependencies are built.
