file(REMOVE_RECURSE
  "CMakeFiles/exact_comparison.dir/exact_comparison.cpp.o"
  "CMakeFiles/exact_comparison.dir/exact_comparison.cpp.o.d"
  "exact_comparison"
  "exact_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
