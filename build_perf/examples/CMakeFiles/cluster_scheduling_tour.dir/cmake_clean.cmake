file(REMOVE_RECURSE
  "CMakeFiles/cluster_scheduling_tour.dir/cluster_scheduling_tour.cpp.o"
  "CMakeFiles/cluster_scheduling_tour.dir/cluster_scheduling_tour.cpp.o.d"
  "cluster_scheduling_tour"
  "cluster_scheduling_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scheduling_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
