# Empty dependencies file for mris_exp.
# This may be replaced when dependencies are built.
