file(REMOVE_RECURSE
  "CMakeFiles/mris_knapsack.dir/knapsack.cpp.o"
  "CMakeFiles/mris_knapsack.dir/knapsack.cpp.o.d"
  "libmris_knapsack.a"
  "libmris_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mris_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
