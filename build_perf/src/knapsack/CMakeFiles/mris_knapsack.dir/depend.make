# Empty dependencies file for mris_knapsack.
# This may be replaced when dependencies are built.
