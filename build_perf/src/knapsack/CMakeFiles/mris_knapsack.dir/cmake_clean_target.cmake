file(REMOVE_RECURSE
  "libmris_knapsack.a"
)
