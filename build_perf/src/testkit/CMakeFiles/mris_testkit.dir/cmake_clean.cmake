file(REMOVE_RECURSE
  "CMakeFiles/mris_testkit.dir/corpus.cpp.o"
  "CMakeFiles/mris_testkit.dir/corpus.cpp.o.d"
  "CMakeFiles/mris_testkit.dir/generators.cpp.o"
  "CMakeFiles/mris_testkit.dir/generators.cpp.o.d"
  "CMakeFiles/mris_testkit.dir/oracles.cpp.o"
  "CMakeFiles/mris_testkit.dir/oracles.cpp.o.d"
  "CMakeFiles/mris_testkit.dir/shrinker.cpp.o"
  "CMakeFiles/mris_testkit.dir/shrinker.cpp.o.d"
  "CMakeFiles/mris_testkit.dir/streams.cpp.o"
  "CMakeFiles/mris_testkit.dir/streams.cpp.o.d"
  "libmris_testkit.a"
  "libmris_testkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mris_testkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
