file(REMOVE_RECURSE
  "libmris_core.a"
)
