file(REMOVE_RECURSE
  "CMakeFiles/mris_core.dir/instance.cpp.o"
  "CMakeFiles/mris_core.dir/instance.cpp.o.d"
  "CMakeFiles/mris_core.dir/metrics.cpp.o"
  "CMakeFiles/mris_core.dir/metrics.cpp.o.d"
  "CMakeFiles/mris_core.dir/schedule.cpp.o"
  "CMakeFiles/mris_core.dir/schedule.cpp.o.d"
  "CMakeFiles/mris_core.dir/schedule_io.cpp.o"
  "CMakeFiles/mris_core.dir/schedule_io.cpp.o.d"
  "libmris_core.a"
  "libmris_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mris_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
