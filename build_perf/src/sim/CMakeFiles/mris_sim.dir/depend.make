# Empty dependencies file for mris_sim.
# This may be replaced when dependencies are built.
