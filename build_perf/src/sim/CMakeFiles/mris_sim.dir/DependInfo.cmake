
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/checkpoint/checkpoint.cpp" "src/sim/CMakeFiles/mris_sim.dir/checkpoint/checkpoint.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/checkpoint/checkpoint.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/mris_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/mris_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/mris_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/faults/crash.cpp" "src/sim/CMakeFiles/mris_sim.dir/faults/crash.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/faults/crash.cpp.o.d"
  "/root/repo/src/sim/recovery/journal.cpp" "src/sim/CMakeFiles/mris_sim.dir/recovery/journal.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/recovery/journal.cpp.o.d"
  "/root/repo/src/sim/recovery/snapshot.cpp" "src/sim/CMakeFiles/mris_sim.dir/recovery/snapshot.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/recovery/snapshot.cpp.o.d"
  "/root/repo/src/sim/recovery/state_io.cpp" "src/sim/CMakeFiles/mris_sim.dir/recovery/state_io.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/recovery/state_io.cpp.o.d"
  "/root/repo/src/sim/resource_profile.cpp" "src/sim/CMakeFiles/mris_sim.dir/resource_profile.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/resource_profile.cpp.o.d"
  "/root/repo/src/sim/shard.cpp" "src/sim/CMakeFiles/mris_sim.dir/shard.cpp.o" "gcc" "src/sim/CMakeFiles/mris_sim.dir/shard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_perf/src/core/CMakeFiles/mris_core.dir/DependInfo.cmake"
  "/root/repo/build_perf/src/util/CMakeFiles/mris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
