file(REMOVE_RECURSE
  "libmris_sim.a"
)
