file(REMOVE_RECURSE
  "CMakeFiles/mris_sched.dir/bfexec.cpp.o"
  "CMakeFiles/mris_sched.dir/bfexec.cpp.o.d"
  "CMakeFiles/mris_sched.dir/bounds.cpp.o"
  "CMakeFiles/mris_sched.dir/bounds.cpp.o.d"
  "CMakeFiles/mris_sched.dir/drf.cpp.o"
  "CMakeFiles/mris_sched.dir/drf.cpp.o.d"
  "CMakeFiles/mris_sched.dir/fluid.cpp.o"
  "CMakeFiles/mris_sched.dir/fluid.cpp.o.d"
  "CMakeFiles/mris_sched.dir/heuristics.cpp.o"
  "CMakeFiles/mris_sched.dir/heuristics.cpp.o.d"
  "CMakeFiles/mris_sched.dir/hybrid.cpp.o"
  "CMakeFiles/mris_sched.dir/hybrid.cpp.o.d"
  "CMakeFiles/mris_sched.dir/mris.cpp.o"
  "CMakeFiles/mris_sched.dir/mris.cpp.o.d"
  "CMakeFiles/mris_sched.dir/optimal.cpp.o"
  "CMakeFiles/mris_sched.dir/optimal.cpp.o.d"
  "CMakeFiles/mris_sched.dir/pq.cpp.o"
  "CMakeFiles/mris_sched.dir/pq.cpp.o.d"
  "CMakeFiles/mris_sched.dir/tetris.cpp.o"
  "CMakeFiles/mris_sched.dir/tetris.cpp.o.d"
  "CMakeFiles/mris_sched.dir/vector_packing.cpp.o"
  "CMakeFiles/mris_sched.dir/vector_packing.cpp.o.d"
  "libmris_sched.a"
  "libmris_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mris_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
