
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bfexec.cpp" "src/sched/CMakeFiles/mris_sched.dir/bfexec.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/bfexec.cpp.o.d"
  "/root/repo/src/sched/bounds.cpp" "src/sched/CMakeFiles/mris_sched.dir/bounds.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/bounds.cpp.o.d"
  "/root/repo/src/sched/drf.cpp" "src/sched/CMakeFiles/mris_sched.dir/drf.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/drf.cpp.o.d"
  "/root/repo/src/sched/fluid.cpp" "src/sched/CMakeFiles/mris_sched.dir/fluid.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/fluid.cpp.o.d"
  "/root/repo/src/sched/heuristics.cpp" "src/sched/CMakeFiles/mris_sched.dir/heuristics.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/heuristics.cpp.o.d"
  "/root/repo/src/sched/hybrid.cpp" "src/sched/CMakeFiles/mris_sched.dir/hybrid.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/hybrid.cpp.o.d"
  "/root/repo/src/sched/mris.cpp" "src/sched/CMakeFiles/mris_sched.dir/mris.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/mris.cpp.o.d"
  "/root/repo/src/sched/optimal.cpp" "src/sched/CMakeFiles/mris_sched.dir/optimal.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/optimal.cpp.o.d"
  "/root/repo/src/sched/pq.cpp" "src/sched/CMakeFiles/mris_sched.dir/pq.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/pq.cpp.o.d"
  "/root/repo/src/sched/tetris.cpp" "src/sched/CMakeFiles/mris_sched.dir/tetris.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/tetris.cpp.o.d"
  "/root/repo/src/sched/vector_packing.cpp" "src/sched/CMakeFiles/mris_sched.dir/vector_packing.cpp.o" "gcc" "src/sched/CMakeFiles/mris_sched.dir/vector_packing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_perf/src/sim/CMakeFiles/mris_sim.dir/DependInfo.cmake"
  "/root/repo/build_perf/src/knapsack/CMakeFiles/mris_knapsack.dir/DependInfo.cmake"
  "/root/repo/build_perf/src/core/CMakeFiles/mris_core.dir/DependInfo.cmake"
  "/root/repo/build_perf/src/util/CMakeFiles/mris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
