# Empty dependencies file for mris_util.
# This may be replaced when dependencies are built.
